//! The tabular schedule IR: per-device rows of typed slots.
//!
//! A [`ScheduleTable`] is the matrix form of a pipeline schedule — one row
//! per device, one column per abstract time slot, every cell a typed
//! [`Slot`] (forward, backward, recompute or idle). It is the
//! representation the schedule-space search manipulates: moves are slot
//! swaps and shifts inside a row, and legality is decided by a standalone
//! checker ([`check_table`]) that admits *arbitrary* legal tables, not
//! just generator-produced ones.
//!
//! The IR round-trips losslessly with the list form: converting a
//! [`ComputeSchedule`] to a table ([`ScheduleTable::from_compute`]) places
//! each op at its unit-cost replay tick, and stripping the idle slots
//! ([`ScheduleTable::to_compute`]) recovers the original per-device op
//! order bit-exactly — pinned for all seven named schemes by the
//! round-trip tests and a property suite.

use crate::chain::{ComputeOp, ComputeSchedule};
use crate::config::PipelineConfig;
use crate::gantt::{block_char, replay_timeline};
use crate::ids::{DeviceId, MicroBatch, StageId};
use crate::stage_map::StageMap;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// One cell of a schedule table: what a device does in one time slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Slot {
    /// The device does nothing this slot.
    Idle,
    /// Forward of `mb` on `stage`.
    Fwd {
        /// Micro-batch.
        mb: MicroBatch,
        /// Global stage id.
        stage: StageId,
    },
    /// Backward of `mb` on `stage`.
    Bwd {
        /// Micro-batch.
        mb: MicroBatch,
        /// Global stage id.
        stage: StageId,
    },
    /// Checkpointed replay of the forward of `mb` on `stage`, re-creating
    /// the stash its backward consumes. Generators never emit this — it is
    /// part of the slot vocabulary so hand-written or searched
    /// checkpointing tables are expressible and checkable.
    Recompute {
        /// Micro-batch.
        mb: MicroBatch,
        /// Global stage id.
        stage: StageId,
    },
}

impl Slot {
    /// The chain compute op this slot performs, if any (`Fwd`/`Bwd` only:
    /// a recompute replays work and does not advance the chain).
    #[inline]
    pub fn compute_op(&self) -> Option<ComputeOp> {
        match *self {
            Slot::Fwd { mb, stage } => Some(ComputeOp { mb, stage, backward: false }),
            Slot::Bwd { mb, stage } => Some(ComputeOp { mb, stage, backward: true }),
            Slot::Idle | Slot::Recompute { .. } => None,
        }
    }

    /// Is this the idle slot?
    #[inline]
    pub fn is_idle(&self) -> bool {
        matches!(self, Slot::Idle)
    }

    /// One-character rendering: `.` idle, `0-9A-Z` forward, `a-z`
    /// backward, `^` recompute (shared visual language with
    /// [`crate::gantt`]).
    pub fn glyph(&self) -> char {
        match *self {
            Slot::Idle => '.',
            Slot::Fwd { mb, .. } => block_char(mb.0, false),
            Slot::Bwd { mb, .. } => block_char(mb.0, true),
            Slot::Recompute { .. } => '^',
        }
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Slot::Idle => write!(f, "idle"),
            Slot::Fwd { mb, stage } => write!(f, "F({mb},{stage})"),
            Slot::Bwd { mb, stage } => write!(f, "B({mb},{stage})"),
            Slot::Recompute { mb, stage } => write!(f, "R({mb},{stage})"),
        }
    }
}

/// A pipeline schedule in tabular form: `rows[d][t]` is what device `d`
/// does in slot `t`. Rows are rectangular; one op per device per slot is
/// structural.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleTable {
    /// Generating configuration (`P`, `B`, scheme of the seed).
    pub config: PipelineConfig,
    /// Stage placement the table must respect.
    pub stage_map: StageMap,
    /// The slot matrix.
    pub rows: Vec<Vec<Slot>>,
}

/// Per-device resource limits enforced by [`check_table_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TableLimits {
    /// Maximum simultaneously-live activation stashes per device
    /// (`None` = unbounded). A forward stashes one unit until its
    /// backward releases it — the accounting of [`crate::memory`].
    pub stash_cap: Option<u32>,
}

/// A violated table invariant. The checker returns the first violation,
/// always naming the offending slot coordinates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TableError {
    /// The table has a different number of rows than the stage map has
    /// devices.
    DeviceCountMismatch {
        /// Rows in the table.
        rows: usize,
        /// Devices in the stage map.
        devices: u32,
    },
    /// A row is shorter or longer than row 0 (tables are rectangular).
    RaggedRow {
        /// Offending device.
        device: DeviceId,
        /// Its row length.
        len: usize,
        /// Expected length (row 0's).
        expected: usize,
    },
    /// An expected compute op appears nowhere in the table.
    MissingOp(ComputeOp),
    /// A compute op appears in more than one slot.
    DuplicateOp {
        /// The op.
        op: ComputeOp,
        /// Device of the second occurrence.
        device: DeviceId,
        /// Column of the second occurrence.
        column: usize,
    },
    /// A compute op sits on a device other than its placement.
    WrongDevice {
        /// The op.
        op: ComputeOp,
        /// Where the table put it.
        device: DeviceId,
        /// Where the stage map places it.
        expected: DeviceId,
    },
    /// An op is scheduled no later than its chain predecessor.
    DependencyViolation {
        /// The op.
        op: ComputeOp,
        /// Its column.
        column: usize,
        /// Its predecessor's column (must be strictly earlier).
        dep_column: usize,
    },
    /// A recompute slot without a matching forward strictly before it or
    /// matching backward strictly after it on the same device, or a
    /// second recompute of the same op.
    BadRecompute {
        /// Micro-batch.
        mb: MicroBatch,
        /// Stage.
        stage: StageId,
        /// Device of the offending slot.
        device: DeviceId,
        /// Column of the offending slot.
        column: usize,
    },
    /// A device exceeds its live-stash cap.
    StashOverflow {
        /// Offending device.
        device: DeviceId,
        /// Column of the forward that broke the cap.
        column: usize,
        /// Live stashes after that forward.
        live: u32,
        /// The configured cap.
        cap: u32,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::DeviceCountMismatch { rows, devices } => {
                write!(f, "table has {rows} rows for {devices} devices")
            }
            TableError::RaggedRow { device, len, expected } => {
                write!(f, "row {device} has {len} slots, expected {expected}")
            }
            TableError::MissingOp(op) => write!(f, "missing op {op}"),
            TableError::DuplicateOp { op, device, column } => {
                write!(f, "duplicate op {op} at {device} slot {column}")
            }
            TableError::WrongDevice { op, device, expected } => {
                write!(f, "{op} placed on {device}, stage map says {expected}")
            }
            TableError::DependencyViolation { op, column, dep_column } => {
                write!(f, "{op} at slot {column} no later than its dependency at slot {dep_column}")
            }
            TableError::BadRecompute { mb, stage, device, column } => {
                write!(f, "recompute R({mb},{stage}) at {device} slot {column} is unmatched")
            }
            TableError::StashOverflow { device, column, live, cap } => {
                write!(f, "{device} holds {live} stashes at slot {column}, cap {cap}")
            }
        }
    }
}

impl std::error::Error for TableError {}

impl ScheduleTable {
    /// Tabulate a compute schedule: each op is placed at its unit-cost
    /// replay tick (`T_F = T_B = 1`, `T_C = 0`), idle slots fill the
    /// gaps. The per-device op *order* is preserved exactly, so
    /// [`ScheduleTable::to_compute`] inverts this losslessly.
    pub fn from_compute(cs: &ComputeSchedule) -> ScheduleTable {
        let tl = replay_timeline(cs, 1, 1, 0);
        let width = tl.makespan as usize;
        let rows = tl
            .spans
            .iter()
            .map(|spans| {
                let mut row = vec![Slot::Idle; width];
                for span in spans {
                    row[span.start as usize] = if span.op.backward {
                        Slot::Bwd { mb: span.op.mb, stage: span.op.stage }
                    } else {
                        Slot::Fwd { mb: span.op.mb, stage: span.op.stage }
                    };
                }
                row
            })
            .collect();
        ScheduleTable { config: cs.config, stage_map: cs.stage_map.clone(), rows }
    }

    /// Strip the idle (and recompute) slots and recover the per-device
    /// compute order — the exact inverse of [`ScheduleTable::from_compute`].
    pub fn to_compute(&self) -> ComputeSchedule {
        let per_device =
            self.rows.iter().map(|row| row.iter().filter_map(Slot::compute_op).collect()).collect();
        ComputeSchedule { config: self.config, stage_map: self.stage_map.clone(), per_device }
    }

    /// Number of columns (0 for an empty table).
    pub fn width(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// Non-idle slots in the table.
    pub fn occupied(&self) -> usize {
        self.rows.iter().flatten().filter(|s| !s.is_idle()).count()
    }

    /// Render one text line per device (`P0 |0123ab..`), the same visual
    /// language as the golden Gantt snapshots.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (d, row) in self.rows.iter().enumerate() {
            out.push_str(&format!("P{d} |"));
            for slot in row {
                out.push(slot.glyph());
            }
            out.push('\n');
        }
        out
    }
}

/// [`check_table_with`] under no resource limits.
pub fn check_table(table: &ScheduleTable) -> Result<(), TableError> {
    check_table_with(table, TableLimits::default())
}

/// Validate an arbitrary schedule table. Rules:
///
/// 1. **Shape** — one row per device, all rows the same length (one op
///    per device per slot is structural in this representation).
/// 2. **Completeness & placement** — every `(micro-batch, stage)` forward
///    and backward appears exactly once, on the device the stage map
///    assigns.
/// 3. **Dependency order** — every op sits in a strictly later column
///    than its chain predecessor (communication takes at least one slot
///    boundary; same-device successors also cannot share a column).
/// 4. **Recompute typing** — a `Recompute` slot needs its forward
///    strictly before and its backward strictly after it on the same
///    device, and at most one recompute per op.
/// 5. **Stash caps** — replaying each row (forward stashes, backward
///    releases) never exceeds `limits.stash_cap` live stashes.
///
/// Unlike [`crate::validate::validate`], which interprets a lowered
/// action list, this checker admits *any* legal table — including ones no
/// generator produces — which is what makes the schedule space
/// searchable.
pub fn check_table_with(table: &ScheduleTable, limits: TableLimits) -> Result<(), TableError> {
    let map = &table.stage_map;
    if table.rows.len() != map.devices as usize {
        return Err(TableError::DeviceCountMismatch {
            rows: table.rows.len(),
            devices: map.devices,
        });
    }
    let width = table.width();
    for (d, row) in table.rows.iter().enumerate() {
        if row.len() != width {
            return Err(TableError::RaggedRow {
                device: DeviceId(d as u32),
                len: row.len(),
                expected: width,
            });
        }
    }

    let s = map.stages;
    let b = table.config.micro_batches;

    // Completeness, placement, duplicates; record each op's column.
    let mut column: HashMap<(u32, u32), usize> = HashMap::with_capacity((2 * s * b) as usize);
    for (d, row) in table.rows.iter().enumerate() {
        let device = DeviceId(d as u32);
        for (t, slot) in row.iter().enumerate() {
            let Some(op) = slot.compute_op() else { continue };
            let expected = map.device_of(op.mb, op.stage);
            if expected != device {
                return Err(TableError::WrongDevice { op, device, expected });
            }
            if column.insert((op.mb.0, op.pos(s)), t).is_some() {
                return Err(TableError::DuplicateOp { op, device, column: t });
            }
        }
    }
    for m in 0..b {
        for pos in 0..2 * s {
            if !column.contains_key(&(m, pos)) {
                return Err(TableError::MissingOp(ComputeOp::from_pos(MicroBatch(m), pos, s)));
            }
        }
    }

    // Dependency order: strict column increase along every chain.
    for m in 0..b {
        for pos in 1..2 * s {
            let t = column[&(m, pos)];
            let dep = column[&(m, pos - 1)];
            if t <= dep {
                return Err(TableError::DependencyViolation {
                    op: ComputeOp::from_pos(MicroBatch(m), pos, s),
                    column: t,
                    dep_column: dep,
                });
            }
        }
    }

    // Recompute typing.
    let mut recomputed: HashMap<(u32, u32), usize> = HashMap::new();
    for (d, row) in table.rows.iter().enumerate() {
        let device = DeviceId(d as u32);
        for (t, slot) in row.iter().enumerate() {
            let Slot::Recompute { mb, stage } = *slot else { continue };
            let bad = || TableError::BadRecompute { mb, stage, device, column: t };
            if recomputed.insert((mb.0, stage.0), t).is_some() {
                return Err(bad());
            }
            if map.device_of(mb, stage) != device {
                return Err(bad());
            }
            let fwd = ComputeOp { mb, stage, backward: false };
            let bwd = ComputeOp { mb, stage, backward: true };
            let fwd_t = column[&(mb.0, fwd.pos(s))];
            let bwd_t = column[&(mb.0, bwd.pos(s))];
            if !(fwd_t < t && t < bwd_t) {
                return Err(bad());
            }
        }
    }

    // Stash caps: forward stashes one unit on its device until the
    // backward of the same (mb, stage) releases it. Both endpoints live
    // on the same device in every scheme (the stash never migrates).
    if let Some(cap) = limits.stash_cap {
        for (d, row) in table.rows.iter().enumerate() {
            let mut live = 0u32;
            for (t, slot) in row.iter().enumerate() {
                match slot.compute_op() {
                    Some(op) if !op.backward => {
                        live += 1;
                        if live > cap {
                            return Err(TableError::StashOverflow {
                                device: DeviceId(d as u32),
                                column: t,
                                live,
                                cap,
                            });
                        }
                    }
                    Some(_) => live = live.saturating_sub(1),
                    None => {}
                }
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use crate::schedule::build_compute_schedule;

    /// The seven named schemes (Chimera only on even splits).
    pub fn seven_schemes() -> Vec<Scheme> {
        vec![
            Scheme::GPipe,
            Scheme::Dapple,
            Scheme::Interleaved { chunks: 2 },
            Scheme::Chimera,
            Scheme::Hanayo { waves: 1 },
            Scheme::Hanayo { waves: 2 },
            Scheme::AsyncPipeDream,
        ]
    }

    fn table_for(p: u32, b: u32, scheme: Scheme) -> ScheduleTable {
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        ScheduleTable::from_compute(&build_compute_schedule(&cfg).unwrap())
    }

    #[test]
    fn all_seven_schemes_roundtrip_bit_exactly() {
        for p in [2u32, 4, 8] {
            for b in [p, 2 * p] {
                for scheme in seven_schemes() {
                    if matches!(scheme, Scheme::Chimera) && !p.is_multiple_of(2) {
                        continue;
                    }
                    let cfg = PipelineConfig::new(p, b, scheme).unwrap();
                    let cs = build_compute_schedule(&cfg).unwrap();
                    let table = ScheduleTable::from_compute(&cs);
                    assert_eq!(table.to_compute(), cs, "{scheme} P={p} B={b}");
                }
            }
        }
    }

    #[test]
    fn generated_tables_pass_the_checker() {
        for scheme in seven_schemes() {
            let table = table_for(4, 8, scheme);
            check_table(&table).unwrap_or_else(|e| panic!("{scheme}: {e}"));
        }
    }

    #[test]
    fn table_shape_matches_replay() {
        let table = table_for(4, 4, Scheme::GPipe);
        assert_eq!(table.rows.len(), 4);
        assert_eq!(table.occupied(), 2 * 4 * 4);
        // GPipe at unit costs: makespan = 2B + 2(P-1).
        assert_eq!(table.width(), 2 * 4 + 2 * 3);
    }

    #[test]
    fn checker_rejects_swapped_chain_order() {
        let mut table = table_for(2, 2, Scheme::GPipe);
        // Swap device 0's first two ops (F(0,0) and F(1,0)): mb0's chain
        // now starts after mb1 consumed... actually both are pos 0 of
        // different mbs — legal! Swap a forward with a backward of the
        // same mb instead: guaranteed chain violation.
        let row = &mut table.rows[0];
        let fwd =
            row.iter().position(|s| matches!(s, Slot::Fwd { mb: MicroBatch(0), .. })).unwrap();
        let bwd =
            row.iter().position(|s| matches!(s, Slot::Bwd { mb: MicroBatch(0), .. })).unwrap();
        row.swap(fwd, bwd);
        assert!(matches!(check_table(&table), Err(TableError::DependencyViolation { .. })));
    }

    #[test]
    fn checker_rejects_dropped_and_duplicated_slots() {
        let base = table_for(2, 2, Scheme::Dapple);
        let mut dropped = base.clone();
        let t = dropped.rows[1].iter().position(|s| !s.is_idle()).unwrap();
        dropped.rows[1][t] = Slot::Idle;
        assert!(matches!(check_table(&dropped), Err(TableError::MissingOp(_))));

        let mut duplicated = base.clone();
        let op = duplicated.rows[1][t];
        let idle = duplicated.rows[1].iter().position(Slot::is_idle).unwrap();
        duplicated.rows[1][idle] = op;
        assert!(matches!(
            check_table(&duplicated),
            Err(TableError::DuplicateOp { .. } | TableError::DependencyViolation { .. })
        ));
    }

    #[test]
    fn checker_rejects_misplaced_ops() {
        let mut table = table_for(2, 2, Scheme::GPipe);
        // Move a device-1 op onto device 0's idle slot.
        let t = table.rows[1].iter().position(|s| !s.is_idle()).unwrap();
        let op = table.rows[1][t];
        table.rows[1][t] = Slot::Idle;
        let idle = table.rows[0].iter().position(Slot::is_idle).unwrap();
        table.rows[0][idle] = op;
        assert!(matches!(check_table(&table), Err(TableError::WrongDevice { .. })));
    }

    #[test]
    fn checker_rejects_ragged_rows() {
        let mut table = table_for(2, 2, Scheme::GPipe);
        table.rows[1].push(Slot::Idle);
        assert!(matches!(check_table(&table), Err(TableError::RaggedRow { .. })));
    }

    #[test]
    fn stash_cap_is_enforced() {
        // GPipe stashes all B micro-batches: cap B-1 must reject, cap B
        // must pass.
        let table = table_for(2, 4, Scheme::GPipe);
        assert!(matches!(
            check_table_with(&table, TableLimits { stash_cap: Some(3) }),
            Err(TableError::StashOverflow { live: 4, cap: 3, .. })
        ));
        check_table_with(&table, TableLimits { stash_cap: Some(4) }).unwrap();
    }

    #[test]
    fn recompute_slots_are_typed_checked() {
        let mut table = table_for(2, 2, Scheme::GPipe);
        // A legal recompute: between F(0, s) and B(0, s) on s's device.
        let row = &mut table.rows[0];
        let fwd =
            row.iter().position(|s| matches!(s, Slot::Fwd { mb: MicroBatch(0), .. })).unwrap();
        let bwd =
            row.iter().position(|s| matches!(s, Slot::Bwd { mb: MicroBatch(0), .. })).unwrap();
        let Slot::Fwd { mb, stage } = row[fwd] else { unreachable!() };
        let slot = (fwd + 1..bwd).find(|&t| row[t].is_idle()).expect("an idle slot between");
        row[slot] = Slot::Recompute { mb, stage };
        check_table(&table).unwrap();

        // Moving it before the forward is rejected.
        let mut bad = table.clone();
        bad.rows[0][slot] = Slot::Idle;
        // Column 0 on device 0 is F(0,0); prepend-style misuse: place the
        // recompute at a column ≤ fwd by swapping onto the fwd position
        // is structural; instead retarget an idle column after bwd.
        let late = (bwd + 1..bad.rows[0].len()).find(|&t| bad.rows[0][t].is_idle());
        if let Some(late) = late {
            bad.rows[0][late] = Slot::Recompute { mb, stage };
            assert!(matches!(check_table(&bad), Err(TableError::BadRecompute { .. })));
        }

        // A second recompute of the same op is rejected.
        let mut twice = table.clone();
        if let Some(extra) = (0..twice.rows[0].len())
            .find(|&t| twice.rows[0][t].is_idle() && t > fwd && t < bwd && t != slot)
        {
            twice.rows[0][extra] = Slot::Recompute { mb, stage };
            assert!(matches!(check_table(&twice), Err(TableError::BadRecompute { .. })));
        }
    }

    #[test]
    fn render_uses_the_gantt_alphabet() {
        let table = table_for(2, 2, Scheme::GPipe);
        let text = table.render();
        assert!(text.starts_with("P0 |01"));
        assert!(text.contains('a') && text.contains('.'));
    }

    #[test]
    fn serde_roundtrip_is_exact() {
        let table = table_for(4, 4, Scheme::Hanayo { waves: 2 });
        let json = serde_json::to_string(&table).unwrap();
        let back: ScheduleTable = serde_json::from_str(&json).unwrap();
        assert_eq!(table, back);
    }
}
