//! Chimera (Li & Hoefler, SC '21): bidirectional pipelines with weight
//! replication.
//!
//! Two straight pipelines run simultaneously in opposite directions; each
//! keeps a **full replica** of the model (2× weight memory, the cost the
//! paper's Fig. 2 flags with a red arrow). Micro-batches `0..B/2` flow
//! down (replica 0), `B/2..B` flow up (replica 1), and each direction fills
//! the other's bubbles.
//!
//! The order is produced by the generic list scheduler with an in-flight
//! cap of `P/2` per direction, which yields the schedule of Fig. 3(c).

use crate::chain::ComputeSchedule;
use crate::config::PipelineConfig;
use crate::schedule::listsched::{list_schedule, ListParams, RetireRule};
use crate::schedule::ScheduleError;
use crate::stage_map::StageMap;

/// Generate Chimera's per-device compute order.
pub fn generate(cfg: &PipelineConfig) -> Result<ComputeSchedule, ScheduleError> {
    let map = StageMap::for_config(cfg);
    let cap = (cfg.devices / 2).max(1);
    let params =
        ListParams { cap: Some(cap), retire: RetireRule::ForwardComplete, ..Default::default() };
    list_schedule(cfg, map, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use crate::ids::DeviceId;

    fn gen(p: u32, b: u32) -> ComputeSchedule {
        generate(&PipelineConfig::new(p, b, Scheme::Chimera).unwrap()).unwrap()
    }

    #[test]
    fn complete_schedules() {
        for (p, b) in [(2, 2), (4, 4), (4, 8), (8, 8)] {
            let cs = gen(p, b);
            assert_eq!(cs.total_ops(), cs.expected_ops(), "P={p} B={b}");
        }
    }

    #[test]
    fn both_directions_start_immediately() {
        // P0 starts the down pipe with mb0; P3 starts the up pipe with the
        // first up micro-batch (B/2) — both at list position 0.
        let cs = gen(4, 4);
        assert_eq!(cs.per_device[0][0].mb.0, 0);
        assert_eq!(cs.per_device[3][0].mb.0, 2);
        assert!(!cs.per_device[3][0].backward);
        assert_eq!(cs.per_device[3][0].stage.0, 0);
    }

    #[test]
    fn up_pipe_uses_mirrored_devices() {
        let cs = gen(4, 4);
        let map = &cs.stage_map;
        // mb2 (up pipe) stage 1 runs on device 2.
        assert_eq!(map.device_of(crate::ids::MicroBatch(2), crate::ids::StageId(1)), DeviceId(2));
    }

    #[test]
    fn per_device_work_is_balanced() {
        let cs = gen(4, 8);
        let counts: Vec<usize> = cs.per_device.iter().map(Vec::len).collect();
        assert!(counts.iter().all(|&c| c == counts[0]), "{counts:?}");
    }
}
