//! Schedule-space local search over [`ScheduleTable`]s.
//!
//! The named generators are *points* in the space of legal schedules; the
//! tabular IR makes the rest of that space reachable. [`local_search`]
//! starts from a seed table (greedy: tabulate the best named scheme) and
//! hill-climbs with slot-level moves — swap two slots in a row, shift a
//! slot into an idle column, append an idle column for room — accepting
//! the first strictly-improving candidate each round. Every candidate is
//! gated by the standalone validity checker before it is scored, so the
//! search can never leave the legal region.
//!
//! Scoring is a caller-supplied closure (`&ScheduleTable -> Option<f64>`,
//! lower is better): `hanayo-core` stays independent of the simulator,
//! and `hanayo-sim` plugs in its compiled fast path as the cost model.
//! All randomness comes from a seeded [`SearchRng`], and ties break by
//! deterministic move order, so a `(seed, table, scorer)` triple always
//! reproduces the same result.

use crate::chain::ComputeOp;
use crate::ids::{DeviceId, MicroBatch, StageId};
use crate::schedule::table::{check_table_with, ScheduleTable, Slot, TableError, TableLimits};
use serde::{Deserialize, Serialize};

/// A deterministic splitmix64 generator — the search's only randomness
/// source, so results are reproducible from the seed alone (no global
/// RNG, no platform dependence).
#[derive(Debug, Clone)]
pub struct SearchRng(u64);

impl SearchRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        SearchRng(seed)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// One local move over a table's slot placements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TableMove {
    /// Swap the slots at columns `a` and `b` of `device`'s row.
    Swap {
        /// Row index.
        device: usize,
        /// First column.
        a: usize,
        /// Second column.
        b: usize,
    },
    /// Move the slot at column `from` into the *idle* column `to` of
    /// `device`'s row (crossing other ops reorders the row).
    Shift {
        /// Row index.
        device: usize,
        /// Source column (non-idle).
        from: usize,
        /// Destination column (must be idle).
        to: usize,
    },
    /// Append one idle column to every row — a no-op for scoring, but it
    /// gives `Shift` room at the table's trailing edge.
    InsertIdle,
}

/// Apply a move in place. Returns `false` (table untouched) if the move
/// is inapplicable: out-of-range columns, shifting an idle slot, or
/// shifting onto a non-idle slot.
pub fn apply_move(table: &mut ScheduleTable, mv: TableMove) -> bool {
    match mv {
        TableMove::Swap { device, a, b } => {
            let Some(row) = table.rows.get_mut(device) else { return false };
            if a == b || a >= row.len() || b >= row.len() {
                return false;
            }
            row.swap(a, b);
            true
        }
        TableMove::Shift { device, from, to } => {
            let Some(row) = table.rows.get_mut(device) else { return false };
            if from >= row.len() || to >= row.len() || from == to {
                return false;
            }
            if row[from].is_idle() || !row[to].is_idle() {
                return false;
            }
            row[to] = row[from];
            row[from] = Slot::Idle;
            true
        }
        TableMove::InsertIdle => {
            for row in &mut table.rows {
                row.push(Slot::Idle);
            }
            true
        }
    }
}

/// Column of `op` in the table, scanning only the row its stage map
/// places it on (ops never sit elsewhere in a valid table).
fn op_column(table: &ScheduleTable, op: ComputeOp) -> Option<usize> {
    let d = table.stage_map.device_of(op.mb, op.stage).idx();
    table.rows.get(d)?.iter().position(|s| s.compute_op() == Some(op))
}

/// Re-check one recompute slot's window: its forward strictly before and
/// its backward strictly after it, on the same row.
fn check_recompute_window(
    table: &ScheduleTable,
    device: usize,
    t: usize,
    mb: MicroBatch,
    stage: StageId,
) -> Result<(), TableError> {
    let bad = TableError::BadRecompute { mb, stage, device: DeviceId(device as u32), column: t };
    let fwd = op_column(table, ComputeOp { mb, stage, backward: false }).ok_or(bad.clone())?;
    let bwd = op_column(table, ComputeOp { mb, stage, backward: true }).ok_or(bad.clone())?;
    if fwd < t && t < bwd {
        Ok(())
    } else {
        Err(bad)
    }
}

/// Re-check the chain edges incident to the op at column `t`: its
/// predecessor must sit strictly earlier, its successor strictly later.
fn check_chain_neighbors(table: &ScheduleTable, op: ComputeOp, t: usize) -> Result<(), TableError> {
    let s = table.stage_map.stages;
    let pos = op.pos(s);
    if pos > 0 {
        let dep = ComputeOp::from_pos(op.mb, pos - 1, s);
        let dep_t = op_column(table, dep).ok_or(TableError::MissingOp(dep))?;
        if t <= dep_t {
            return Err(TableError::DependencyViolation { op, column: t, dep_column: dep_t });
        }
    }
    if pos + 1 < 2 * s {
        let succ = ComputeOp::from_pos(op.mb, pos + 1, s);
        let succ_t = op_column(table, succ).ok_or(TableError::MissingOp(succ))?;
        if succ_t <= t {
            return Err(TableError::DependencyViolation {
                op: succ,
                column: succ_t,
                dep_column: t,
            });
        }
    }
    Ok(())
}

/// Incremental validity of `candidate = valid table + mv`: instead of
/// re-running the full [`check_table_with`] pass, examine only what the
/// move can break. A `Swap`/`Shift` permutes slots within one row, so
/// shape, completeness, placement and recompute multiplicity are
/// untouched; what can change is (a) the chain edges incident to each
/// moved op, (b) the recompute windows of moved slots and of recomputes
/// whose endpoints moved, and (c) the moved row's stash replay.
/// `InsertIdle` is legal by construction.
///
/// The *verdict* (`is_ok`) always equals the full checker's on such
/// candidates — pinned by a `debug_assert` in [`local_search`] and by the
/// `move_check_matches_full_checker` property test — though the specific
/// error may differ because the two passes scan in different orders.
pub fn check_move(
    candidate: &ScheduleTable,
    mv: TableMove,
    limits: TableLimits,
) -> Result<(), TableError> {
    let (device, touched) = match mv {
        TableMove::Swap { device, a, b } => (device, [Some(a), Some(b)]),
        TableMove::Shift { device, to, .. } => (device, [Some(to), None]),
        TableMove::InsertIdle => return Ok(()),
    };
    let Some(row) = candidate.rows.get(device) else {
        return Err(TableError::DeviceCountMismatch {
            rows: candidate.rows.len(),
            devices: candidate.stage_map.devices,
        });
    };

    // Moved compute ops: their incident chain edges are the only
    // dependency constraints whose columns changed.
    let mut moved: [Option<(MicroBatch, StageId)>; 2] = [None, None];
    for (k, t) in touched.iter().flatten().enumerate() {
        match row[*t] {
            Slot::Idle => {}
            Slot::Recompute { mb, stage } => {
                check_recompute_window(candidate, device, *t, mb, stage)?;
            }
            Slot::Fwd { mb, stage } | Slot::Bwd { mb, stage } => {
                if let Some(op) = row[*t].compute_op() {
                    check_chain_neighbors(candidate, op, *t)?;
                }
                moved[k] = Some((mb, stage));
            }
        }
    }

    // A moved forward/backward is a window endpoint of any recompute of
    // the same (mb, stage); such recomputes live on the same row.
    if moved.iter().any(Option::is_some) {
        for (t, slot) in row.iter().enumerate() {
            let Slot::Recompute { mb, stage } = *slot else { continue };
            if moved.contains(&Some((mb, stage))) {
                check_recompute_window(candidate, device, t, mb, stage)?;
            }
        }
    }

    // Stash replay of the one changed row.
    if let Some(cap) = limits.stash_cap {
        let mut live = 0u32;
        for (t, slot) in row.iter().enumerate() {
            match slot.compute_op() {
                Some(op) if !op.backward => {
                    live += 1;
                    if live > cap {
                        return Err(TableError::StashOverflow {
                            device: DeviceId(device as u32),
                            column: t,
                            live,
                            cap,
                        });
                    }
                }
                Some(_) => live = live.saturating_sub(1),
                None => {}
            }
        }
    }
    Ok(())
}

/// Knobs of the local search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchOptions {
    /// RNG seed; the whole search is a pure function of it.
    pub seed: u64,
    /// Maximum improvement rounds.
    pub max_rounds: usize,
    /// Candidate moves sampled per round.
    pub moves_per_round: usize,
    /// Stop after this many consecutive rounds with no improvement.
    pub patience: usize,
    /// Resource limits every candidate must respect.
    pub limits: TableLimits,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            seed: 0x48414E41594F, // "HANAYO"
            max_rounds: 64,
            moves_per_round: 64,
            patience: 6,
            limits: TableLimits::default(),
        }
    }
}

/// What the search did, for reporting and reproducibility audits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Candidate moves sampled (including inapplicable/illegal ones).
    pub moves_tried: usize,
    /// Moves accepted into the incumbent.
    pub moves_applied: usize,
    /// Score of the seed table.
    pub initial_score: f64,
    /// Score of the returned table.
    pub final_score: f64,
}

/// Why a search could not start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// The seed table fails the validity checker.
    InvalidSeed(TableError),
    /// The scorer rejected the seed table (returned `None`).
    UnscorableSeed,
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::InvalidSeed(e) => write!(f, "seed table is invalid: {e}"),
            SearchError::UnscorableSeed => write!(f, "scorer rejected the seed table"),
        }
    }
}

impl std::error::Error for SearchError {}

/// Sample one candidate move. Column picks are biased toward occupied
/// slots so most candidates actually reorder work.
fn sample_move(table: &ScheduleTable, rng: &mut SearchRng) -> TableMove {
    let devices = table.rows.len();
    let width = table.width();
    if devices == 0 || width == 0 {
        return TableMove::InsertIdle;
    }
    let device = rng.below(devices);
    let row = &table.rows[device];
    let occupied: Vec<usize> = (0..width).filter(|&t| !row[t].is_idle()).collect();
    let idle: Vec<usize> = (0..width).filter(|&t| row[t].is_idle()).collect();
    match rng.next_u64() % 10 {
        // Mostly swaps of two nearby occupied slots — the move that
        // actually permutes a device's op order.
        0..=5 => {
            if occupied.len() < 2 {
                return TableMove::InsertIdle;
            }
            let i = rng.below(occupied.len());
            // Nearby in op order: distance 1..=3 with wraparound clamp.
            let d = 1 + rng.below(3);
            let j = (i + d).min(occupied.len() - 1);
            if i == j {
                return TableMove::InsertIdle;
            }
            TableMove::Swap { device, a: occupied[i], b: occupied[j] }
        }
        // Shifts of an occupied slot into an idle column.
        6..=8 => {
            if occupied.is_empty() || idle.is_empty() {
                return TableMove::InsertIdle;
            }
            let from = occupied[rng.below(occupied.len())];
            let to = idle[rng.below(idle.len())];
            TableMove::Shift { device, from, to }
        }
        _ => TableMove::InsertIdle,
    }
}

/// Sample `n` candidate moves for `table` from a fresh [`SearchRng`]
/// seeded with `seed` — the same distribution [`local_search`] draws
/// from, exposed so tests and external drivers can random-walk the legal
/// region (gate each move with [`check_table_with`] before keeping it).
pub fn sample_legal_moves(table: &ScheduleTable, seed: u64, n: usize) -> Vec<TableMove> {
    let mut rng = SearchRng::new(seed);
    (0..n).map(|_| sample_move(table, &mut rng)).collect()
}

/// Hill-climb from `seed` under `score` (lower is better). Each round
/// samples `moves_per_round` candidates in seeded order and accepts the
/// first strictly-improving legal one (first-improvement with
/// deterministic tie-breaking: on equal scores the incumbent wins, and
/// candidate order is fixed by the seed). Stops after `max_rounds` rounds
/// or `patience` consecutive rounds without improvement.
pub fn local_search<F>(
    seed: &ScheduleTable,
    opts: &SearchOptions,
    mut score: F,
) -> Result<(ScheduleTable, SearchStats), SearchError>
where
    F: FnMut(&ScheduleTable) -> Option<f64>,
{
    check_table_with(seed, opts.limits).map_err(SearchError::InvalidSeed)?;
    let initial = score(seed).ok_or(SearchError::UnscorableSeed)?;

    let mut rng = SearchRng::new(opts.seed);
    let mut best = seed.clone();
    let mut best_order = best.to_compute();
    let mut best_score = initial;
    let mut stats = SearchStats {
        rounds: 0,
        moves_tried: 0,
        moves_applied: 0,
        initial_score: initial,
        final_score: initial,
    };

    let mut dry = 0usize;
    while stats.rounds < opts.max_rounds && dry < opts.patience {
        stats.rounds += 1;
        let mut improved = false;
        for _ in 0..opts.moves_per_round {
            stats.moves_tried += 1;
            let mv = sample_move(&best, &mut rng);
            let mut candidate = best.clone();
            if !apply_move(&mut candidate, mv) {
                continue;
            }
            // Moves that do not change the stripped op order (idle
            // shuffling) cannot change the score — skip the sim call.
            let order = candidate.to_compute();
            if !matches!(mv, TableMove::InsertIdle) && order == best_order {
                continue;
            }
            // The incumbent is valid, so one move only needs the
            // incremental check — O(moved ops × width) instead of a full
            // table pass per candidate.
            let valid = check_move(&candidate, mv, opts.limits);
            debug_assert_eq!(
                valid.is_ok(),
                check_table_with(&candidate, opts.limits).is_ok(),
                "incremental move check disagrees with the full checker on {mv:?}"
            );
            if valid.is_err() {
                continue;
            }
            if matches!(mv, TableMove::InsertIdle) {
                // Legal by construction and score-neutral: accept without
                // scoring so Shift gains trailing room, but it is not an
                // improvement.
                best = candidate;
                best_order = order;
                continue;
            }
            let Some(s) = score(&candidate) else { continue };
            if s < best_score {
                best = candidate;
                best_order = order;
                best_score = s;
                stats.moves_applied += 1;
                improved = true;
                break;
            }
        }
        if improved {
            dry = 0;
        } else {
            dry += 1;
        }
    }

    stats.final_score = best_score;
    Ok((best, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PipelineConfig, Scheme};
    use crate::gantt::replay_timeline;
    use crate::schedule::build_compute_schedule;
    use crate::schedule::table::check_table;

    fn seed_table(p: u32, b: u32, scheme: Scheme) -> ScheduleTable {
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        ScheduleTable::from_compute(&build_compute_schedule(&cfg).unwrap())
    }

    /// Abstract-cost scorer: replay makespan with T_B = 2 T_F, T_C = 1.
    fn makespan(t: &ScheduleTable) -> Option<f64> {
        Some(replay_timeline(&t.to_compute(), 1, 2, 1).makespan as f64)
    }

    #[test]
    fn rng_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = SearchRng::new(7);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SearchRng::new(7);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SearchRng::new(8);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn moves_preserve_or_refuse() {
        let mut t = seed_table(2, 2, Scheme::GPipe);
        let occupied = t.rows[0].iter().filter(|s| !s.is_idle()).count();
        // Swap applies.
        assert!(apply_move(&mut t, TableMove::Swap { device: 0, a: 0, b: 1 }));
        // Shift from an idle slot refuses.
        let idle = t.rows[0].iter().position(Slot::is_idle).unwrap();
        assert!(!apply_move(&mut t, TableMove::Shift { device: 0, from: idle, to: 0 }));
        // InsertIdle widens every row.
        let w = t.width();
        assert!(apply_move(&mut t, TableMove::InsertIdle));
        assert_eq!(t.width(), w + 1);
        assert!(t.rows.iter().all(|r| r.len() == w + 1));
        // Op population is untouched throughout.
        assert_eq!(t.rows[0].iter().filter(|s| !s.is_idle()).count(), occupied);
    }

    #[test]
    fn search_never_returns_worse_or_illegal() {
        let seed = seed_table(4, 4, Scheme::GPipe);
        let opts = SearchOptions { max_rounds: 16, moves_per_round: 16, ..Default::default() };
        let (found, stats) = local_search(&seed, &opts, makespan).unwrap();
        check_table(&found).unwrap();
        assert!(stats.final_score <= stats.initial_score);
        assert_eq!(makespan(&found).unwrap(), stats.final_score);
    }

    #[test]
    fn search_recovers_from_a_deliberately_bad_seed() {
        // Perturb GPipe into a legal-but-worse order (reverse device 0's
        // forward block: mb B-1 first starves the whole downstream pipe),
        // then check the search wins back a strictly better makespan.
        let cfg = PipelineConfig::new(4, 6, Scheme::GPipe).unwrap();
        let mut cs = build_compute_schedule(&cfg).unwrap();
        cs.per_device[0][..6].reverse();
        let seed = ScheduleTable::from_compute(&cs);
        check_table(&seed).unwrap();
        let baseline = makespan(&seed_table(4, 6, Scheme::GPipe)).unwrap();
        assert!(makespan(&seed).unwrap() > baseline, "perturbation must actually hurt");

        let opts = SearchOptions { max_rounds: 64, moves_per_round: 64, ..Default::default() };
        let (found, stats) = local_search(&seed, &opts, makespan).unwrap();
        check_table(&found).unwrap();
        assert!(
            stats.final_score < stats.initial_score,
            "search failed to improve a deliberately bad seed: {stats:?}"
        );
    }

    #[test]
    fn identical_seeds_reproduce_identical_results() {
        let seed = seed_table(4, 4, Scheme::Dapple);
        let opts = SearchOptions { max_rounds: 12, moves_per_round: 24, ..Default::default() };
        let (a, sa) = local_search(&seed, &opts, makespan).unwrap();
        let (b, sb) = local_search(&seed, &opts, makespan).unwrap();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        // A different seed may find a different table but never a worse one.
        let opts2 = SearchOptions { seed: 1234, ..opts };
        let (_, s2) = local_search(&seed, &opts2, makespan).unwrap();
        assert!(s2.final_score <= s2.initial_score);
    }

    #[test]
    fn unscorable_seed_is_a_typed_error() {
        let seed = seed_table(2, 2, Scheme::GPipe);
        let err = local_search(&seed, &SearchOptions::default(), |_| None).unwrap_err();
        assert_eq!(err, SearchError::UnscorableSeed);
    }

    #[test]
    fn invalid_seed_is_a_typed_error() {
        let mut seed = seed_table(2, 2, Scheme::GPipe);
        let t = seed.rows[0].iter().position(|s| !s.is_idle()).unwrap();
        seed.rows[0][t] = Slot::Idle;
        let err = local_search(&seed, &SearchOptions::default(), makespan).unwrap_err();
        assert!(matches!(err, SearchError::InvalidSeed(TableError::MissingOp(_))));
    }
}
