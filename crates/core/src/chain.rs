//! Per-micro-batch dependency chains and the compute-only schedule form.
//!
//! Every micro-batch performs `2S` compute operations in a fixed dependency
//! chain: forwards of stages `0..S`, then backwards of stages `S-1..=0`.
//! We index that chain with a *position* `pos ∈ 0..2S`:
//!
//! ```text
//! pos:      0    1    ...  S-1 | S      S+1     ...  2S-1
//! op:       F(0) F(1) ...  F(S-1) B(S-1) B(S-2) ...  B(0)
//! ```
//!
//! Schedulers first produce a [`ComputeSchedule`] — per-device *order* of
//! compute ops — which [`crate::comm::lower`] then completes with
//! communication actions into a full [`crate::action::Schedule`].

use crate::config::PipelineConfig;
use crate::ids::{MicroBatch, StageId};
use crate::stage_map::StageMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One forward or backward of one micro-batch on one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ComputeOp {
    /// The micro-batch.
    pub mb: MicroBatch,
    /// Global stage id.
    pub stage: StageId,
    /// `true` for backward propagation.
    pub backward: bool,
}

impl ComputeOp {
    /// Forward op constructor.
    #[inline]
    pub fn fwd(mb: u32, stage: u32) -> Self {
        ComputeOp { mb: MicroBatch(mb), stage: StageId(stage), backward: false }
    }

    /// Backward op constructor.
    #[inline]
    pub fn bwd(mb: u32, stage: u32) -> Self {
        ComputeOp { mb: MicroBatch(mb), stage: StageId(stage), backward: true }
    }

    /// Chain position of this op in a pipeline with `stages` stages.
    #[inline]
    pub fn pos(&self, stages: u32) -> u32 {
        if self.backward {
            2 * stages - 1 - self.stage.0
        } else {
            self.stage.0
        }
    }

    /// Inverse of [`ComputeOp::pos`].
    #[inline]
    pub fn from_pos(mb: MicroBatch, pos: u32, stages: u32) -> Self {
        if pos < stages {
            ComputeOp { mb, stage: StageId(pos), backward: false }
        } else {
            ComputeOp { mb, stage: StageId(2 * stages - 1 - pos), backward: true }
        }
    }
}

impl fmt::Display for ComputeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = if self.backward { "B" } else { "F" };
        write!(f, "{k}({},{})", self.mb, self.stage)
    }
}

/// A compute-only pipeline schedule: the per-device op order before
/// communication lowering.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComputeSchedule {
    /// Generating configuration.
    pub config: PipelineConfig,
    /// Stage placement.
    pub stage_map: StageMap,
    /// `per_device[d]` is device `d`'s compute ops in execution order.
    pub per_device: Vec<Vec<ComputeOp>>,
}

impl ComputeSchedule {
    /// Total ops; must equal `2 · B · S` for a complete schedule.
    pub fn total_ops(&self) -> usize {
        self.per_device.iter().map(Vec::len).sum()
    }

    /// Expected op count for the configuration.
    pub fn expected_ops(&self) -> usize {
        2 * self.config.micro_batches as usize * self.stage_map.stages as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_roundtrip_covers_full_chain() {
        let s = 8;
        for pos in 0..2 * s {
            let op = ComputeOp::from_pos(MicroBatch(2), pos, s);
            assert_eq!(op.pos(s), pos);
            assert_eq!(op.mb, MicroBatch(2));
        }
    }

    #[test]
    fn forward_positions_are_stage_ids() {
        assert_eq!(ComputeOp::fwd(0, 3).pos(8), 3);
    }

    #[test]
    fn backward_positions_reverse_stage_order() {
        // backward of the last stage comes right after the last forward
        assert_eq!(ComputeOp::bwd(0, 7).pos(8), 8);
        // backward of stage 0 is the final op
        assert_eq!(ComputeOp::bwd(0, 0).pos(8), 15);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ComputeOp::fwd(1, 2).to_string(), "F(mb1,S2)");
        assert_eq!(ComputeOp::bwd(1, 2).to_string(), "B(mb1,S2)");
    }
}
