//! Pipeline configuration: which scheme, how many devices, micro-batches,
//! waves — the knobs of Table 1 in the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The synchronous (and one asynchronous) pipeline-parallel scheduling
/// algorithms implemented by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// GPipe: pipeline all forwards, then all backwards (Huang et al. 2018).
    GPipe,
    /// DAPPLE's one-forward-one-backward schedule (Fan et al. 2020), the
    /// de-facto standard 1F1B pipeline.
    Dapple,
    /// Megatron-LM's interleaved 1F1B: each device holds `chunks` virtual
    /// stages assigned round-robin, shrinking bubbles at the cost of more
    /// communication.
    Interleaved {
        /// Number of virtual stages (model chunks) per device.
        chunks: u32,
    },
    /// Chimera (Li & Hoefler 2021): two pipelines in opposite directions,
    /// each with its own full weight replica.
    Chimera,
    /// Hanayo: a single wave-like pipeline with `waves` "V"s per
    /// forward/backward pass and **no** weight replication. `S = 2·W·P`.
    Hanayo {
        /// Number of waves `W` (Table 1: `W = S / (2P)`).
        waves: u32,
    },
    /// PipeDream-style asynchronous 1F1B without a flush (Fig. 4b). Included
    /// for illustration; convergence-affecting, so never benchmarked as a
    /// synchronous peer.
    AsyncPipeDream,
}

impl Scheme {
    /// Number of model stages this scheme uses on `devices` workers.
    pub fn stages(self, devices: u32) -> u32 {
        match self {
            Scheme::GPipe | Scheme::Dapple | Scheme::AsyncPipeDream => devices,
            Scheme::Interleaved { chunks } => devices * chunks,
            // Chimera partitions the model into P stages; the second replica
            // re-uses the same stage ids on mirrored devices.
            Scheme::Chimera => devices,
            Scheme::Hanayo { waves } => 2 * waves * devices,
        }
    }

    /// Number of full weight copies resident across the pipeline.
    /// Only Chimera replicates the model (the wave transformation exists
    /// precisely to remove this; see §3.2 of the paper).
    pub fn weight_replicas(self) -> u32 {
        match self {
            Scheme::Chimera => 2,
            _ => 1,
        }
    }

    /// Short label used in figures (`G`, `D`, `C`, `H-2`, ...).
    pub fn label(self) -> String {
        match self {
            Scheme::GPipe => "G".to_string(),
            Scheme::Dapple => "D".to_string(),
            Scheme::Interleaved { chunks } => format!("I-{chunks}"),
            Scheme::Chimera => "C".to_string(),
            Scheme::Hanayo { waves } => format!("H-{waves}"),
            Scheme::AsyncPipeDream => "PD".to_string(),
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scheme::GPipe => write!(f, "GPipe"),
            Scheme::Dapple => write!(f, "DAPPLE"),
            Scheme::Interleaved { chunks } => write!(f, "Interleaved-1F1B(v={chunks})"),
            Scheme::Chimera => write!(f, "Chimera"),
            Scheme::Hanayo { waves } => write!(f, "Hanayo(W={waves})"),
            Scheme::AsyncPipeDream => write!(f, "PipeDream-async"),
        }
    }
}

/// Configuration of a single pipeline (one pipeline-parallel group).
///
/// Data parallelism is layered *outside* of this: a cluster plan runs `D`
/// replicas of one `PipelineConfig` on disjoint device groups and all-reduces
/// gradients at the flush (see `hanayo-sim`'s plan module).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// `P`: number of workers in the pipeline.
    pub devices: u32,
    /// `B`: micro-batches per training iteration.
    pub micro_batches: u32,
    /// Which scheduling algorithm to use.
    pub scheme: Scheme,
}

/// Errors produced when a configuration is structurally impossible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `devices == 0` or `micro_batches == 0`.
    Empty,
    /// Chimera needs an even number of devices and micro-batches to split
    /// between the two directions.
    ChimeraNeedsEvenSplit,
    /// `waves == 0` or `chunks == 0`.
    ZeroSubdivision,
    /// The stage count `S` does not fit in `u32` (e.g. `2·W·P` overflows
    /// for an enormous wave count). Without this guard `stages()` panics
    /// in debug builds and silently wraps in release builds.
    StageOverflow,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Empty => write!(f, "devices and micro_batches must be non-zero"),
            ConfigError::ChimeraNeedsEvenSplit => {
                write!(f, "Chimera requires an even device count and micro-batch count")
            }
            ConfigError::ZeroSubdivision => write!(f, "waves/chunks must be non-zero"),
            ConfigError::StageOverflow => {
                write!(f, "stage count overflows u32 (waves/chunks × devices too large)")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl PipelineConfig {
    /// Create a validated configuration.
    pub fn new(devices: u32, micro_batches: u32, scheme: Scheme) -> Result<Self, ConfigError> {
        let cfg = PipelineConfig { devices, micro_batches, scheme };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Check the structural invariants of the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.devices == 0 || self.micro_batches == 0 {
            return Err(ConfigError::Empty);
        }
        match self.scheme {
            Scheme::Chimera
                if (!self.devices.is_multiple_of(2) || !self.micro_batches.is_multiple_of(2)) =>
            {
                return Err(ConfigError::ChimeraNeedsEvenSplit);
            }
            Scheme::Hanayo { waves: 0 } | Scheme::Interleaved { chunks: 0 } => {
                return Err(ConfigError::ZeroSubdivision)
            }
            _ => {}
        }
        if self.checked_stages().is_none() {
            return Err(ConfigError::StageOverflow);
        }
        Ok(())
    }

    /// `S` if it fits in `u32`, `None` on overflow (the shape
    /// [`PipelineConfig::validate`] rejects as [`ConfigError::StageOverflow`]).
    pub fn checked_stages(&self) -> Option<u32> {
        match self.scheme {
            Scheme::GPipe | Scheme::Dapple | Scheme::AsyncPipeDream | Scheme::Chimera => {
                Some(self.devices)
            }
            Scheme::Interleaved { chunks } => self.devices.checked_mul(chunks),
            Scheme::Hanayo { waves } => {
                2u32.checked_mul(waves).and_then(|w| w.checked_mul(self.devices))
            }
        }
    }

    /// `S`: total number of model stages for this configuration.
    pub fn stages(&self) -> u32 {
        self.scheme.stages(self.devices)
    }

    /// `W = S / (2P)` from Table 1 — the number of waves. For non-wave
    /// schemes this returns the equivalent wave count of their stage layout
    /// (`0` means "less than half a wave", i.e. a straight pipe).
    pub fn waves(&self) -> u32 {
        match self.scheme {
            Scheme::Hanayo { waves } => waves,
            _ => self.stages() / (2 * self.devices),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_counts_follow_table1() {
        assert_eq!(Scheme::GPipe.stages(4), 4);
        assert_eq!(Scheme::Dapple.stages(8), 8);
        assert_eq!(Scheme::Chimera.stages(8), 8);
        assert_eq!(Scheme::Hanayo { waves: 1 }.stages(4), 8);
        assert_eq!(Scheme::Hanayo { waves: 2 }.stages(4), 16);
        assert_eq!(Scheme::Hanayo { waves: 4 }.stages(4), 32);
        assert_eq!(Scheme::Interleaved { chunks: 2 }.stages(4), 8);
    }

    #[test]
    fn only_chimera_replicates_weights() {
        assert_eq!(Scheme::Chimera.weight_replicas(), 2);
        assert_eq!(Scheme::GPipe.weight_replicas(), 1);
        assert_eq!(Scheme::Hanayo { waves: 4 }.weight_replicas(), 1);
    }

    #[test]
    fn wave_count_matches_definition() {
        // W = S / (2P)
        let cfg = PipelineConfig::new(4, 4, Scheme::Hanayo { waves: 2 }).unwrap();
        assert_eq!(cfg.waves(), 2);
        assert_eq!(cfg.stages(), 16);
        let cfg = PipelineConfig::new(4, 4, Scheme::GPipe).unwrap();
        assert_eq!(cfg.waves(), 0, "a straight pipe is half a wave");
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert_eq!(PipelineConfig::new(0, 4, Scheme::GPipe).unwrap_err(), ConfigError::Empty);
        assert_eq!(PipelineConfig::new(4, 0, Scheme::GPipe).unwrap_err(), ConfigError::Empty);
        assert_eq!(
            PipelineConfig::new(3, 4, Scheme::Chimera).unwrap_err(),
            ConfigError::ChimeraNeedsEvenSplit
        );
        assert_eq!(
            PipelineConfig::new(4, 3, Scheme::Chimera).unwrap_err(),
            ConfigError::ChimeraNeedsEvenSplit
        );
        assert_eq!(
            PipelineConfig::new(4, 4, Scheme::Hanayo { waves: 0 }).unwrap_err(),
            ConfigError::ZeroSubdivision
        );
    }

    #[test]
    fn validation_rejects_stage_overflow() {
        // 2·W·P would wrap: previously this panicked (debug) or silently
        // wrapped (release) in stages(); now it is a named rejection.
        assert_eq!(
            PipelineConfig::new(4, 4, Scheme::Hanayo { waves: u32::MAX / 4 }).unwrap_err(),
            ConfigError::StageOverflow
        );
        assert_eq!(
            PipelineConfig::new(8, 4, Scheme::Interleaved { chunks: u32::MAX / 4 }).unwrap_err(),
            ConfigError::StageOverflow
        );
        // A large-but-fitting shape still validates.
        PipelineConfig::new(2, 2, Scheme::Hanayo { waves: 1 << 20 }).unwrap();
    }

    #[test]
    fn labels_match_figure_legend() {
        assert_eq!(Scheme::GPipe.label(), "G");
        assert_eq!(Scheme::Dapple.label(), "D");
        assert_eq!(Scheme::Chimera.label(), "C");
        assert_eq!(Scheme::Hanayo { waves: 8 }.label(), "H-8");
    }
}
