//! The Fig. 5 transformation: a `P`-device Chimera pipeline becomes two
//! data-parallel 1-wave pipelines on `P/2` devices each — *"without extra
//! overhead"*.
//!
//! Swapping every `Pipe_bright` block on the lower half of the devices with
//! the symmetric `Pipe_dark` block on the upper half folds each direction
//! into a "V". The computation order is unchanged, the swap makes the fold
//! communication device-local, and — crucially — each half now trains **one**
//! weight copy, so Chimera's replication degenerates into ordinary data
//! parallelism. This module materialises both sides of that equivalence so
//! it can be tested and rendered (`repro fig5`).

use crate::chain::ComputeSchedule;
use crate::config::{PipelineConfig, Scheme};
use crate::gantt::replay_timeline;
use crate::memory::unit_profile;
use crate::schedule::{build_compute_schedule, ScheduleError};
use serde::{Deserialize, Serialize};

/// Both sides of the Fig. 5 equivalence.
#[derive(Debug, Clone)]
pub struct WaveTransformation {
    /// The original bidirectional Chimera on `P` devices.
    pub chimera: ComputeSchedule,
    /// The two 1-wave pipelines on `P/2` devices each (data parallel rank 0
    /// and 1). They are structurally identical; both are kept to make the
    /// data-parallel reading explicit.
    pub wave_pipelines: [ComputeSchedule; 2],
}

/// Summary statistics comparing the two forms under the paper's drawing
/// costs (`T_F = 1`, `T_B = 2`, `T_C = 0`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransformationReport {
    /// Replayed makespan of the Chimera form.
    pub chimera_makespan: u64,
    /// Replayed makespan of the wave form (max over the two pipelines,
    /// which run concurrently on disjoint devices).
    pub wave_makespan: u64,
    /// Max weight units per device before (always 2 — the replica).
    pub chimera_mw: f64,
    /// Max weight units per device after (always 1).
    pub wave_mw: f64,
    /// Cross-device messages in the Chimera form.
    pub chimera_messages: usize,
    /// Cross-device messages per wave pipeline.
    pub wave_messages: usize,
}

/// Construct the transformation for a `P`-device, `B`-micro-batch Chimera.
///
/// Requires `P % 2 == 0` (Chimera's own constraint) and `B % 2 == 0`
/// (half the micro-batches per direction).
pub fn chimera_to_waves(p: u32, b: u32) -> Result<WaveTransformation, ScheduleError> {
    let chimera_cfg = PipelineConfig::new(p, b, Scheme::Chimera)?;
    let chimera = build_compute_schedule(&chimera_cfg)?;
    let wave_cfg = PipelineConfig::new(p / 2, b / 2, Scheme::Hanayo { waves: 1 })?;
    let wave = build_compute_schedule(&wave_cfg)?;
    Ok(WaveTransformation { chimera, wave_pipelines: [wave.clone(), wave] })
}

fn message_count(cs: &ComputeSchedule) -> usize {
    use crate::action::CommDir;
    let schedule = crate::comm::lower(cs);
    schedule
        .iter_actions()
        .map(|(_, a)| a.comm_ops().iter().filter(|o| o.dir == CommDir::Send).count())
        .sum()
}

impl WaveTransformation {
    /// Evaluate both forms and summarise the paper's claims.
    pub fn report(&self) -> TransformationReport {
        let ch_tl = replay_timeline(&self.chimera, 1, 2, 0);
        let wv_tl = replay_timeline(&self.wave_pipelines[0], 1, 2, 0);
        let ch_mem = unit_profile(&self.chimera);
        let wv_mem = unit_profile(&self.wave_pipelines[0]);
        TransformationReport {
            chimera_makespan: ch_tl.makespan,
            wave_makespan: wv_tl.makespan,
            chimera_mw: ch_mem.mw_units.iter().cloned().fold(0.0, f64::max),
            wave_mw: wv_mem.mw_units.iter().cloned().fold(0.0, f64::max),
            chimera_messages: message_count(&self.chimera),
            wave_messages: message_count(&self.wave_pipelines[0]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformation_preserves_total_compute() {
        let t = chimera_to_waves(4, 4).unwrap();
        // Chimera: B=4 micro-batches through S=4 stages, fwd+bwd = 32 ops.
        // Each wave pipeline: B=2 through S=4, fwd+bwd = 16 ops; 2 pipes.
        let chimera_ops = t.chimera.total_ops();
        let wave_ops: usize = t.wave_pipelines.iter().map(|w| w.total_ops()).sum();
        assert_eq!(chimera_ops, wave_ops);
    }

    #[test]
    fn wave_form_is_at_least_as_fast() {
        // "the efficiency of these two wave-like pipelines is at least as
        // good as, if not better than, the original" (§3.2).
        for (p, b) in [(4, 4), (4, 8), (8, 8)] {
            let t = chimera_to_waves(p, b).unwrap();
            let r = t.report();
            assert!(
                r.wave_makespan <= r.chimera_makespan,
                "P={p} B={b}: wave {} vs chimera {}",
                r.wave_makespan,
                r.chimera_makespan
            );
        }
    }

    #[test]
    fn wave_form_halves_weight_memory() {
        let r = chimera_to_waves(4, 4).unwrap().report();
        assert_eq!(r.chimera_mw, 2.0);
        assert_eq!(r.wave_mw, 1.0);
    }

    #[test]
    fn wave_form_reduces_communication() {
        // The swap makes fold communication local: per-pipeline messages
        // must be fewer than half of Chimera's (it also loses the
        // cross-direction edges).
        let r = chimera_to_waves(8, 8).unwrap().report();
        assert!(
            r.wave_messages * 2 <= r.chimera_messages,
            "wave 2x{} vs chimera {}",
            r.wave_messages,
            r.chimera_messages
        );
    }

    #[test]
    fn stage_chunks_have_equal_size() {
        // model/P chunks on both sides: Chimera S=P on P devices; wave
        // S=2(P/2)=P stages on P/2 devices.
        let t = chimera_to_waves(8, 8).unwrap();
        assert_eq!(t.chimera.stage_map.stages, 8);
        assert_eq!(t.wave_pipelines[0].stage_map.stages, 8);
    }

    #[test]
    fn rejects_odd_shapes() {
        assert!(chimera_to_waves(3, 4).is_err());
        assert!(chimera_to_waves(4, 3).is_err());
    }
}
