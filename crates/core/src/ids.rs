//! Strongly-typed identifiers used throughout the schedule IR.
//!
//! Keeping devices, stages and micro-batches as distinct newtypes prevents
//! the classic index-mixup bugs in scheduling code, at zero runtime cost.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A worker (one GPU in the paper's terminology, one simulated device or one
/// OS thread in ours). Identified by its rank within a single pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

/// A pipeline stage: one contiguous slice of the model's layers.
///
/// Stage indices are *global model positions*: stage `s` always denotes the
/// same slice of layers regardless of which device executes it or which
/// direction the hosting pipeline flows. A scheme with `S` stages partitions
/// the model into `S` slices, `0..S`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StageId(pub u32);

/// A micro-batch index within one training iteration (`0..B`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MicroBatch(pub u32);

/// Index of a weight replica. Almost always `0`; Chimera's upward pipeline
/// uses replica `1` because it stores a second full copy of the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReplicaId(pub u32);

impl DeviceId {
    /// Rank as a plain `usize` for indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl StageId {
    /// Stage as a plain `usize` for indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl MicroBatch {
    /// Micro-batch as a plain `usize` for indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl ReplicaId {
    /// Replica as a plain `usize` for indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for MicroBatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mb{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(DeviceId(3).to_string(), "P3");
        assert_eq!(StageId(7).to_string(), "S7");
        assert_eq!(MicroBatch(0).to_string(), "mb0");
    }

    #[test]
    fn ids_are_ordered_by_rank() {
        assert!(DeviceId(0) < DeviceId(1));
        assert!(StageId(2) < StageId(10));
        assert!(MicroBatch(1) > MicroBatch(0));
    }

    #[test]
    fn idx_roundtrip() {
        assert_eq!(DeviceId(5).idx(), 5);
        assert_eq!(StageId(5).idx(), 5);
        assert_eq!(MicroBatch(5).idx(), 5);
        assert_eq!(ReplicaId(1).idx(), 1);
    }
}
