//! Closed-form bubble ratios for the synchronous schemes (Fig. 1, Fig. 2).
//!
//! All formulas are expressed with Table 1's symbols. Derivations (with
//! `B` micro-batches, per-device work `B(T_F+T_B)`):
//!
//! * **GPipe / DAPPLE** — the classic ramp: `(P-1)(T_F+T_B)` of idle per
//!   device, total span `(B+P-1)(T_F+T_B)`; communication adds `2(P-1)T_C`
//!   on the critical path.
//! * **GEMS** — executes the two directions *sequentially* (its second
//!   replica exists for memory reasons, not overlap), so only `B/2`
//!   micro-batches amortise the same ramp.
//! * **Chimera** — two simultaneous directions halve the ramp:
//!   `(P/2-1)(T_F+T_B)`.
//! * **Hanayo** — Eq. (1) of the paper, reproduced verbatim in
//!   [`hanayo_eq1`]; with `T_B = 2 T_F`, `T_C = 0` it simplifies to
//!   `(2P-2)/(3PW+P-1)` ([`hanayo_simplified`]).

use super::CostTerms;

/// GPipe bubble ratio for `P` devices and `B` micro-batches.
pub fn gpipe(p: u32, b: u32, c: &CostTerms) -> f64 {
    let (p, b) = (p as f64, b as f64);
    let ramp = (p - 1.0) * (c.t_f + c.t_b) + 2.0 * (p - 1.0) * c.t_c;
    let total = b * (c.t_f + c.t_b) + ramp;
    ramp / total
}

/// DAPPLE (1F1B) bubble ratio — identical critical path to GPipe; the
/// schedule moves memory, not time (§2.2).
pub fn dapple(p: u32, b: u32, c: &CostTerms) -> f64 {
    gpipe(p, b, c)
}

/// GEMS bubble ratio: the down/up replicas run sequentially, so the ramp is
/// amortised over only `B/2` micro-batches.
pub fn gems(p: u32, b: u32, c: &CostTerms) -> f64 {
    let (p, b) = (p as f64, b as f64);
    let ramp = (p - 1.0) * (c.t_f + c.t_b) + 2.0 * (p - 1.0) * c.t_c;
    let total = (b / 2.0) * (c.t_f + c.t_b) + ramp;
    ramp / total
}

/// Chimera (2 replicas) bubble ratio: bidirectional overlap halves the
/// ramp length.
pub fn chimera(p: u32, b: u32, c: &CostTerms) -> f64 {
    let (p, b) = (p as f64, b as f64);
    let ramp = (p / 2.0 - 1.0) * (c.t_f + c.t_b) + (p - 2.0) * c.t_c;
    let total = b * (c.t_f + c.t_b) + ramp;
    ramp / total
}

/// Hanayo's Eq. (1), verbatim from §3.4:
///
/// ```text
///          (1/W)·T_B + (1 + 2W + 2/P + (P-2)/3)·T_C
/// ratio = --------------------------------------------------------------
///          P/(P-1)·T_F + (1/(2W) + P/(P-1))·T_B + ((P-2)/2 + 4W)·T_C
/// ```
///
/// The formula assumes `B = P` (one full round of micro-batches).
pub fn hanayo_eq1(p: u32, w: u32, c: &CostTerms) -> f64 {
    let (pf, wf) = (p as f64, w as f64);
    let num = c.t_b / wf + (1.0 + 2.0 * wf + 2.0 / pf + (pf - 2.0) / 3.0) * c.t_c;
    let den = pf / (pf - 1.0) * c.t_f
        + (1.0 / (2.0 * wf) + pf / (pf - 1.0)) * c.t_b
        + ((pf - 2.0) / 2.0 + 4.0 * wf) * c.t_c;
    num / den
}

/// Eq. (1) simplified with `T_B = 2 T_F`, `T_C = 0`:
/// `(2P-2) / (3PW + P - 1)` — "this expression decreases with an
/// increasing number of waves" (§3.4).
pub fn hanayo_simplified(p: u32, w: u32) -> f64 {
    let (pf, wf) = (p as f64, w as f64);
    (2.0 * pf - 2.0) / (3.0 * pf * wf + pf - 1.0)
}

/// The Fig. 1 bar chart: bubble ratios of all schemes at `B = P`, under
/// the paper's `T_B = 2 T_F`, `T_C = 0` convention. Returns labelled rows.
pub fn figure1_rows(devices: u32) -> Vec<(&'static str, f64)> {
    let c = CostTerms::paper_default();
    let p = devices;
    vec![
        ("Gpipe", gpipe(p, p, &c)),
        ("DAPPLE", dapple(p, p, &c)),
        ("GEMS", gems(p, p, &c)),
        ("Chimera (replica=2)", chimera(p, p, &c)),
        ("Hanayo (wave=2)", hanayo_eq1(p, 2, &c)),
        ("Hanayo (wave=4)", hanayo_eq1(p, 4, &c)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn gpipe_matches_textbook_values() {
        let c = CostTerms::paper_default();
        assert!((gpipe(8, 8, &c) - 7.0 / 15.0).abs() < EPS);
        assert!((gpipe(32, 32, &c) - 31.0 / 63.0).abs() < EPS);
    }

    #[test]
    fn dapple_equals_gpipe() {
        let c = CostTerms::paper_default();
        for p in [4, 8, 16, 32] {
            assert_eq!(gpipe(p, p, &c), dapple(p, p, &c));
        }
    }

    #[test]
    fn gems_is_worst() {
        let c = CostTerms::paper_default();
        for p in [8, 32] {
            assert!(gems(p, p, &c) > gpipe(p, p, &c));
        }
        assert!((gems(8, 8, &c) - 7.0 / 11.0).abs() < EPS);
    }

    #[test]
    fn chimera_roughly_halves_the_ramp() {
        let c = CostTerms::paper_default();
        assert!((chimera(8, 8, &c) - 3.0 / 11.0).abs() < EPS);
        assert!(chimera(8, 8, &c) < gpipe(8, 8, &c));
    }

    #[test]
    fn eq1_simplification_is_exact() {
        let c = CostTerms::paper_default();
        for p in [4u32, 8, 16, 32] {
            for w in [1u32, 2, 4, 8] {
                let full = hanayo_eq1(p, w, &c);
                let simple = hanayo_simplified(p, w);
                assert!((full - simple).abs() < 1e-9, "P={p} W={w}: {full} vs {simple}");
            }
        }
    }

    #[test]
    fn bubble_decreases_with_waves() {
        let c = CostTerms::paper_default();
        for p in [8u32, 32] {
            let mut prev = f64::MAX;
            for w in [1u32, 2, 4, 8] {
                let r = hanayo_eq1(p, w, &c);
                assert!(r < prev, "P={p} W={w}");
                prev = r;
            }
        }
    }

    #[test]
    fn figure1_ordering_matches_the_paper() {
        // GEMS > GPipe = DAPPLE > Chimera ≥ Hanayo-2 > Hanayo-4.
        for p in [8, 32] {
            let rows = figure1_rows(p);
            let v: Vec<f64> = rows.iter().map(|r| r.1).collect();
            assert!(v[2] > v[0], "GEMS worst");
            assert_eq!(v[0], v[1], "GPipe == DAPPLE");
            assert!(v[3] < v[0], "Chimera beats GPipe");
            assert!(v[4] < v[3] + 1e-9, "H-2 at or below Chimera");
            assert!(v[5] < v[4], "H-4 beats H-2");
        }
    }

    #[test]
    fn communication_term_raises_ratio() {
        let c0 = CostTerms::paper_default();
        let c1 = CostTerms::with_comm(1.0, 2.0, 0.1);
        assert!(hanayo_eq1(8, 2, &c1) > hanayo_eq1(8, 2, &c0));
        assert!(gpipe(8, 8, &c1) > gpipe(8, 8, &c0));
    }

    #[test]
    fn eq1_absolute_comm_bubble_grows_with_waves() {
        // Eq. 1 attributes `(1 + 2W + 2/P + (P-2)/3)·T_C` of *absolute*
        // bubble time to communication: that contribution must grow with W.
        // (The throughput consequence — "optimal wave number is lower on
        // poor interconnects", §5.2 — is asserted on the time model in
        // perf_model, since the *ratio* normalises it away.)
        let t_c = 0.5;
        let comm_bubble = |p: f64, w: f64| (1.0 + 2.0 * w + 2.0 / p + (p - 2.0) / 3.0) * t_c;
        assert!(comm_bubble(8.0, 8.0) > comm_bubble(8.0, 2.0));
        assert!(comm_bubble(8.0, 4.0) > comm_bubble(8.0, 1.0));
    }

    #[test]
    fn all_ratios_in_unit_interval() {
        let c = CostTerms::with_comm(1.0, 2.0, 0.2);
        for p in [2u32, 4, 8, 16, 32, 64] {
            for b in [p, 2 * p] {
                for r in [gpipe(p, b, &c), gems(p, b, &c), chimera(p, b, &c)] {
                    assert!((0.0..1.0).contains(&r), "P={p} B={b}: {r}");
                }
            }
            for w in [1u32, 2, 4] {
                let r = hanayo_eq1(p, w, &c);
                assert!((0.0..1.0).contains(&r), "P={p} W={w}: {r}");
            }
        }
    }
}
