//! The unified performance model (§3.4, "Through theoretical analysis, we
//! obtain a unified performance model for pipeline parallelism").
//!
//! For every scheme we estimate one iteration's wall time as
//! `useful work + ramp bubble`:
//!
//! ```text
//! T_iter = B·(T_F + T_B) + Δ(scheme, P, W, T_C)
//! ```
//!
//! where the ramp `Δ` is independent of `B` for 1F1B-family schedules (the
//! steady state is bubble-free) and the formulas mirror
//! [`crate::analysis::bubble`]. This closed form is what the configuration
//! search (Fig. 10) uses to sanity-check the discrete-event results.

use super::CostTerms;
use crate::config::Scheme;

/// Ramp (bubble) time `Δ` of one iteration.
pub fn ramp_time(scheme: Scheme, p: u32, c: &CostTerms) -> f64 {
    let pf = p as f64;
    match scheme {
        Scheme::GPipe | Scheme::Dapple | Scheme::AsyncPipeDream => {
            (pf - 1.0) * (c.t_f + c.t_b) + 2.0 * (pf - 1.0) * c.t_c
        }
        Scheme::Interleaved { chunks } => {
            // Each chunk is 1/chunks of a stage: the ramp shrinks v-fold but
            // every stage boundary now communicates.
            (pf - 1.0) * (c.t_f + c.t_b) / chunks as f64 + 2.0 * (pf - 1.0) * c.t_c * chunks as f64
        }
        Scheme::Chimera => (pf / 2.0 - 1.0) * (c.t_f + c.t_b) + (pf - 2.0) * c.t_c,
        Scheme::Hanayo { waves } => {
            // Compute ramp: invert Eq. (1) with T_C = 0 at B = P
            // (ratio = Δ / (P(T_F+T_B) + Δ)), then add Eq. (1)'s
            // communication-bubble terms, which grow with the wave count —
            // this is what makes the optimal W finite on slow interconnects
            // (§5.2).
            let c0 = CostTerms { t_c: 0.0, ..*c };
            let r = super::bubble::hanayo_eq1(p, waves, &c0);
            let work = pf * (c.t_f + c.t_b);
            let compute_ramp = r * work / (1.0 - r);
            let wf = waves as f64;
            let comm_bubble = (1.0 + 2.0 * wf + 2.0 / pf + (pf - 2.0) / 3.0) * c.t_c;
            compute_ramp + comm_bubble
        }
    }
}

/// Estimated wall time of one iteration with `B` micro-batches.
pub fn iteration_time(scheme: Scheme, p: u32, b: u32, c: &CostTerms) -> f64 {
    b as f64 * (c.t_f + c.t_b) + ramp_time(scheme, p, c)
}

/// Estimated throughput in micro-batches per unit time.
pub fn throughput(scheme: Scheme, p: u32, b: u32, c: &CostTerms) -> f64 {
    b as f64 / iteration_time(scheme, p, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hanayo_ramp_shrinks_with_waves() {
        let c = CostTerms::paper_default();
        let r1 = ramp_time(Scheme::Hanayo { waves: 1 }, 8, &c);
        let r2 = ramp_time(Scheme::Hanayo { waves: 2 }, 8, &c);
        let r4 = ramp_time(Scheme::Hanayo { waves: 4 }, 8, &c);
        assert!(r1 > r2 && r2 > r4, "{r1} {r2} {r4}");
    }

    #[test]
    fn hanayo_beats_chimera_beats_dapple() {
        let c = CostTerms::paper_default();
        let d = throughput(Scheme::Dapple, 8, 8, &c);
        let ch = throughput(Scheme::Chimera, 8, 8, &c);
        let h = throughput(Scheme::Hanayo { waves: 2 }, 8, 8, &c);
        assert!(ch > d);
        assert!(h > ch);
    }

    #[test]
    fn iteration_time_grows_linearly_in_b() {
        let c = CostTerms::paper_default();
        let t1 = iteration_time(Scheme::Dapple, 4, 4, &c);
        let t2 = iteration_time(Scheme::Dapple, 4, 8, &c);
        assert!((t2 - t1 - 4.0 * 3.0).abs() < 1e-9);
    }

    #[test]
    fn gpipe_iteration_matches_replay() {
        // Cross-check against the abstract replay: (B+P-1)(TF+TB).
        let c = CostTerms::paper_default();
        let t = iteration_time(Scheme::GPipe, 4, 4, &c);
        assert!((t - 21.0).abs() < 1e-9);
    }

    #[test]
    fn expensive_comm_penalises_many_waves() {
        let c = CostTerms::with_comm(1.0, 2.0, 0.8);
        let h2 = iteration_time(Scheme::Hanayo { waves: 2 }, 8, 8, &c);
        let h8 = iteration_time(Scheme::Hanayo { waves: 8 }, 8, 8, &c);
        assert!(h8 > h2, "H-8 {h8} vs H-2 {h2}");
    }
}
