//! Analytical models from the paper: Table 1 symbols, the Fig. 1/Fig. 2
//! bubble-ratio formulas, Eq. (1), the Fig. 7 bubble-zone taxonomy, and the
//! unified performance model the paper uses to pick configurations.

pub mod bubble;
pub mod formulas;
pub mod perf_model;
pub mod zones;

use serde::{Deserialize, Serialize};

/// The cost symbols of Table 1.
///
/// * `t_f` — time for a complete forward pass (all stages summed) divided
///   by `P`; i.e. the forward time of `model/P` worth of layers for one
///   micro-batch.
/// * `t_b` — same for backward (the paper draws and assumes `T_B = 2 T_F`).
/// * `t_c` — one point-to-point transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostTerms {
    /// `T_F` from Table 1.
    pub t_f: f64,
    /// `T_B` from Table 1.
    pub t_b: f64,
    /// `T_C` from Table 1.
    pub t_c: f64,
}

impl CostTerms {
    /// The paper's drawing/analysis convention: `T_B = 2 T_F`, `T_C = 0`.
    pub fn paper_default() -> Self {
        CostTerms { t_f: 1.0, t_b: 2.0, t_c: 0.0 }
    }

    /// With a communication term.
    pub fn with_comm(t_f: f64, t_b: f64, t_c: f64) -> Self {
        CostTerms { t_f, t_b, t_c }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_ratios() {
        let c = CostTerms::paper_default();
        assert_eq!(c.t_b, 2.0 * c.t_f);
        assert_eq!(c.t_c, 0.0);
    }
}
