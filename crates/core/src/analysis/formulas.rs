//! The Fig. 2 comparison table: bubble ratio, weight memory and activation
//! memory per scheme, side by side.

use super::{bubble, CostTerms};
use crate::config::PipelineConfig;
use crate::config::Scheme;
use crate::memory;
use crate::schedule::{build_compute_schedule, ScheduleError};
use serde::Serialize;

/// One row of the Fig. 2 table.
///
/// Serialize-only: `bubble_formula` borrows a `'static` documentation
/// string, which cannot be deserialized from owned JSON text.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ComparisonRow {
    /// Scheme name.
    pub scheme: String,
    /// Symbolic bubble-ratio formula (documentation string).
    pub bubble_formula: &'static str,
    /// Numeric bubble ratio at the given `(P, B)`.
    pub bubble_ratio: f64,
    /// Weight memory in Fig. 3 units (max over devices).
    pub mw_units: f64,
    /// Peak activation memory in Fig. 3 units (max over devices).
    pub ma_units: f64,
}

/// Build the Fig. 2 comparison at a concrete `(P, B)` with `T_B = 2 T_F`,
/// `T_C = 0`. `waves` selects the Hanayo row's wave count. Errs when the
/// shape is invalid for one of the compared schemes (e.g. an odd `P` for
/// Chimera) instead of panicking.
pub fn comparison_table(p: u32, b: u32, waves: u32) -> Result<Vec<ComparisonRow>, ScheduleError> {
    let c = CostTerms::paper_default();
    let schemes: Vec<(Scheme, &'static str, f64)> = vec![
        (Scheme::GPipe, "(P-1)/(B+P-1)", bubble::gpipe(p, b, &c)),
        (Scheme::Dapple, "(P-1)/(B+P-1)", bubble::dapple(p, b, &c)),
        (Scheme::Chimera, "(P/2-1)/(B+P/2-1)", bubble::chimera(p, b, &c)),
        (
            Scheme::Hanayo { waves },
            "(2P-2)/(3PW+P-1)  [Eq. 1, B=P]",
            bubble::hanayo_eq1(p, waves, &c),
        ),
    ];
    schemes
        .into_iter()
        .map(|(scheme, formula, ratio)| {
            let cfg = PipelineConfig::new(p, b, scheme)?;
            let prof = memory::unit_profile(&build_compute_schedule(&cfg)?);
            let mw = prof.mw_units.iter().cloned().fold(0.0, f64::max);
            let ma = prof.ma_peak_units.iter().cloned().fold(0.0, f64::max);
            Ok(ComparisonRow {
                scheme: scheme.to_string(),
                bubble_formula: formula,
                bubble_ratio: ratio,
                mw_units: mw,
                ma_units: ma,
            })
        })
        .collect()
}

/// Render the comparison as an aligned text table.
pub fn render_table(rows: &[ComparisonRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:<34} {:>8} {:>6} {:>6}\n",
        "scheme", "bubble formula", "bubble", "Mw", "Ma"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:<34} {:>7.1}% {:>6.2} {:>6.2}\n",
            r.scheme,
            r.bubble_formula,
            100.0 * r.bubble_ratio,
            r.mw_units,
            r.ma_units
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_reproduces_fig2_arrows() {
        // Fig. 2's qualitative arrows: GPipe high Ma; DAPPLE unbalanced but
        // lower Ma; Chimera low bubble but 2x Mw; Hanayo low bubble, 1x Mw.
        // (B > P is the regime where GPipe's stash-everything shows: at
        // B = P the head of a 1F1B pipe stashes just as much.)
        let rows = comparison_table(8, 16, 2).unwrap();
        let by = |name: &str| rows.iter().find(|r| r.scheme.contains(name)).unwrap().clone();
        let (g, d, c, h) = (by("GPipe"), by("DAPPLE"), by("Chimera"), by("Hanayo"));
        assert!(g.ma_units > d.ma_units || g.ma_units > h.ma_units, "GPipe Ma highest");
        assert_eq!(c.mw_units, 2.0, "Chimera doubles weights");
        assert_eq!(h.mw_units, 1.0, "Hanayo keeps one copy");
        assert!(h.bubble_ratio < g.bubble_ratio);
        assert!(c.bubble_ratio < g.bubble_ratio);
    }

    #[test]
    fn render_is_aligned() {
        let rows = comparison_table(4, 4, 1).unwrap();
        let text = render_table(&rows);
        assert_eq!(text.lines().count(), rows.len() + 1);
        assert!(text.contains("Hanayo"));
    }
}
