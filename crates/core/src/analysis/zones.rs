//! The Fig. 7 bubble taxonomy: four bubble types in a Hanayo iteration.
//!
//! * **Zone A** — waiting for forward activations from peers at ramp-up;
//!   single-bubble size `T_F/(2W) + T_C`.
//! * **Zone B** — the forward/backward turnaround: backwards take longer
//!   than forwards, so a device at local rank `LR` waits
//!   `(P-LR)/(2W)·(T_B-T_F) + 2·T_C`.
//! * **Zone C** — waiting for peer backwards at drain; sizes `T_B + 2T_C`
//!   and `T_B + T_C`.
//! * **Cross-communication** — the NCCL batching synchronisation,
//!   contributing the `(P-2)/3·T_C` term of Eq. (1).
//!
//! [`analytic_zones`] evaluates those expressions; [`measure_zones`]
//! classifies the *actual* idle gaps of a replayed timeline so the two can
//! be compared (they agree on the paper's drawing convention, which is a
//! regression test on the generator).

use super::CostTerms;
use crate::gantt::Timeline;
use serde::{Deserialize, Serialize};

/// Analytic single-bubble sizes per zone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneSizes {
    /// Zone A single bubble: `T_F/(2W) + T_C`.
    pub zone_a: f64,
    /// Zone B single bubble per local rank `0..P`.
    pub zone_b: Vec<f64>,
    /// Zone C bubble pair: `(T_B + 2T_C, T_B + T_C)`.
    pub zone_c: (f64, f64),
    /// Cross-communication term per device: `(P-2)/3 · T_C`.
    pub cross_comm: f64,
}

/// Evaluate the Fig. 7 expressions.
pub fn analytic_zones(p: u32, w: u32, c: &CostTerms) -> ZoneSizes {
    let (pf, wf) = (p as f64, w as f64);
    let zone_a = c.t_f / (2.0 * wf) + c.t_c;
    let zone_b =
        (0..p).map(|lr| (pf - lr as f64) / (2.0 * wf) * (c.t_b - c.t_f) + 2.0 * c.t_c).collect();
    let zone_c = (c.t_b + 2.0 * c.t_c, c.t_b + c.t_c);
    let cross_comm = (pf - 2.0) / 3.0 * c.t_c;
    ZoneSizes { zone_a, zone_b, zone_c, cross_comm }
}

/// Idle time of a replayed timeline, classified by what the device was
/// waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZoneMeasurement {
    /// Idle immediately before a forward op (waiting for activations):
    /// Zone A.
    pub zone_a: u64,
    /// Idle before the first backward following a forward (the fwd/bwd
    /// turnaround): Zone B.
    pub zone_b: u64,
    /// Idle between/after backwards (drain + flush wait): Zone C.
    pub zone_c: u64,
}

impl ZoneMeasurement {
    /// Total classified idle.
    pub fn total(&self) -> u64 {
        self.zone_a + self.zone_b + self.zone_c
    }
}

/// Classify every idle gap of a timeline.
pub fn measure_zones(tl: &Timeline) -> ZoneMeasurement {
    let mut m = ZoneMeasurement { zone_a: 0, zone_b: 0, zone_c: 0 };
    for spans in &tl.spans {
        let mut cursor = 0u64;
        let mut prev_backward = false;
        for span in spans {
            if span.start > cursor {
                let gap = span.start - cursor;
                match (prev_backward, span.op.backward) {
                    (_, false) => m.zone_a += gap,
                    (false, true) => m.zone_b += gap,
                    (true, true) => m.zone_c += gap,
                }
            }
            cursor = span.end;
            prev_backward = span.op.backward;
        }
        // Trailing wait until the global flush.
        if tl.makespan > cursor {
            m.zone_c += tl.makespan - cursor;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PipelineConfig, Scheme};
    use crate::gantt::replay_timeline;
    use crate::schedule::build_compute_schedule;

    #[test]
    fn zone_sizes_shrink_with_waves() {
        let c = CostTerms::paper_default();
        let z1 = analytic_zones(4, 1, &c);
        let z2 = analytic_zones(4, 2, &c);
        assert!(z2.zone_a < z1.zone_a);
        assert!(z2.zone_b[0] < z1.zone_b[0]);
    }

    #[test]
    fn zone_b_decreases_with_rank() {
        let c = CostTerms::paper_default();
        let z = analytic_zones(8, 2, &c);
        for lr in 1..8 {
            assert!(z.zone_b[lr] < z.zone_b[lr - 1]);
        }
    }

    #[test]
    fn cross_comm_vanishes_without_tc() {
        let z = analytic_zones(8, 2, &CostTerms::paper_default());
        assert_eq!(z.cross_comm, 0.0);
        let z = analytic_zones(8, 2, &CostTerms::with_comm(1.0, 2.0, 0.3));
        assert!(z.cross_comm > 0.0);
    }

    #[test]
    fn measured_zones_sum_to_total_idle() {
        let cfg = PipelineConfig::new(4, 4, Scheme::Hanayo { waves: 2 }).unwrap();
        let cs = build_compute_schedule(&cfg).unwrap();
        let tl = replay_timeline(&cs, 1, 2, 0);
        let m = measure_zones(&tl);
        let busy: u64 = tl.busy_per_device().iter().sum();
        let idle = tl.makespan * tl.spans.len() as u64 - busy;
        assert_eq!(m.total(), idle);
    }

    #[test]
    fn hanayo_has_all_three_zones() {
        let cfg = PipelineConfig::new(4, 4, Scheme::Hanayo { waves: 1 }).unwrap();
        let cs = build_compute_schedule(&cfg).unwrap();
        let tl = replay_timeline(&cs, 1, 2, 0);
        let m = measure_zones(&tl);
        assert!(m.zone_a > 0, "{m:?}");
        assert!(m.zone_b > 0 || m.zone_c > 0, "{m:?}");
    }

    #[test]
    fn gpipe_turnaround_is_dominated_by_b_and_c() {
        // In GPipe the big bubble sits between forward and backward phases.
        let cfg = PipelineConfig::new(4, 4, Scheme::GPipe).unwrap();
        let cs = build_compute_schedule(&cfg).unwrap();
        let tl = replay_timeline(&cs, 1, 2, 0);
        let m = measure_zones(&tl);
        assert!(m.zone_b + m.zone_c > m.zone_a, "{m:?}");
    }
}
