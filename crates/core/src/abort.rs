//! Cooperative cancellation.
//!
//! [`AbortFlag`] started life inside the runtime's mailbox machinery as
//! the latch a crashing worker trips so its peers unwind instead of
//! deadlocking. It lives here, at the bottom of the dependency graph,
//! because the same latch now also threads *user-initiated* cancellation
//! through the tuner (`hanayo-sim`) and the planning service
//! (`hanayo-serve`): a long sweep checks the flag between candidate
//! batches and returns a typed `Cancelled` error once its client is gone.

use std::sync::atomic::{AtomicBool, Ordering};

/// Cooperative cancellation latch shared by every participant of one
/// run — the workers of a training run, or the candidate batches of a
/// tuner sweep. Tripping is one-way and idempotent; observers poll
/// [`AbortFlag::is_tripped`] at their own checkpoints and unwind cleanly.
#[derive(Debug, Default)]
pub struct AbortFlag {
    tripped: AtomicBool,
}

impl AbortFlag {
    /// A fresh, untripped flag.
    pub fn new() -> AbortFlag {
        AbortFlag::default()
    }

    /// Signal every observer to stop.
    pub fn trip(&self) {
        self.tripped.store(true, Ordering::SeqCst);
    }

    /// Has someone aborted the run?
    pub fn is_tripped(&self) -> bool {
        self.tripped.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_once_and_stays_tripped() {
        let flag = AbortFlag::new();
        assert!(!flag.is_tripped());
        flag.trip();
        assert!(flag.is_tripped());
        flag.trip();
        assert!(flag.is_tripped());
    }

    #[test]
    fn visible_across_threads() {
        use std::sync::Arc;
        let flag = Arc::new(AbortFlag::new());
        let observer = {
            let flag = flag.clone();
            std::thread::spawn(move || {
                while !flag.is_tripped() {
                    std::thread::yield_now();
                }
                true
            })
        };
        flag.trip();
        assert!(observer.join().unwrap_or(false));
    }
}
