//! Unit-based memory accounting: the `M_w` / `M_a` annotations of Fig. 3.
//!
//! Units follow the paper's caption exactly:
//!
//! * one **weight unit** is "a whole model weight divided by the number of
//!   devices" — so a stage in a scheme with `S` stages weighs `P/S` units;
//! * one **activation unit** is "one intermediate activation": the stash of
//!   one micro-batch across `model/P` worth of layers — so one stage-chunk
//!   stash weighs `P/S` units.
//!
//! Activations are stashed when a forward completes and released when the
//! matching backward completes; replaying a schedule's per-device op order
//! yields the peak. This is what differentiates GPipe (all `B` stashes
//! live) from 1F1B-family schedules.

use crate::chain::ComputeSchedule;
use serde::{Deserialize, Serialize};

/// Per-device memory profile in Fig. 3's units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitMemoryProfile {
    /// Weight units resident per device (static).
    pub mw_units: Vec<f64>,
    /// Peak activation units per device over the iteration.
    pub ma_peak_units: Vec<f64>,
    /// Mean of the per-device peak totals (`mw + ma`).
    pub mean_total: f64,
    /// Population variance of the per-device peak totals — the imbalance
    /// statistic quoted in §5.1.
    pub variance_total: f64,
}

impl UnitMemoryProfile {
    /// Highest per-device total (weights + peak activations) — "the ability
    /// of a scheme to fit within a certain cluster is often determined by
    /// the highest peak memory" (§5.1).
    ///
    /// Returns `None` for a degenerate profile with no devices: folding an
    /// empty profile from `0.0` used to silently report a peak of zero,
    /// which reads as "fits anywhere" — exactly the wrong default for a
    /// capacity check.
    pub fn highest_peak(&self) -> Option<f64> {
        debug_assert_eq!(self.mw_units.len(), self.ma_peak_units.len());
        self.mw_units.iter().zip(&self.ma_peak_units).map(|(w, a)| w + a).reduce(f64::max)
    }
}

/// Replay a compute schedule and report per-device peaks in paper units,
/// with every stash weighing one stage-chunk (`P/S` units) — the paper's
/// no-checkpointing setting.
pub fn unit_profile(cs: &ComputeSchedule) -> UnitMemoryProfile {
    let p = cs.stage_map.devices as f64;
    let s = cs.stage_map.stages as f64;
    unit_profile_with(cs, p / s)
}

/// Replay a compute schedule and report per-device peaks in paper units,
/// with an explicit stash weight per compute op.
///
/// `stash_units` is what one stage's forward leaves resident until its
/// backward, in Fig. 3 activation units. The default ([`unit_profile`]) is
/// the stage-chunk `P/S`; under full activation recomputation the resident
/// stash is only the stage-input boundary tensor, so callers pass the
/// boundary's weight in units instead (boundary bytes over the bytes of
/// one activation unit for the concrete model).
///
/// Replaying the per-device op *order* is exact for peak accounting: a
/// stash interval on a device starts at its forward and ends at its
/// backward, and both endpoints live on the same device in every scheme
/// (the stash never migrates).
pub fn unit_profile_with(cs: &ComputeSchedule, stash_units: f64) -> UnitMemoryProfile {
    let p = cs.stage_map.devices as f64;
    let s = cs.stage_map.stages as f64;
    let chunk = p / s;
    assert!(stash_units.is_finite() && stash_units >= 0.0, "bad stash weight {stash_units}");

    let mw_units: Vec<f64> =
        cs.stage_map.stages_held().iter().map(|&held| held as f64 * chunk).collect();

    let mut ma_peak_units = Vec::with_capacity(cs.per_device.len());
    for ops in &cs.per_device {
        let mut live = 0.0f64;
        let mut peak = 0.0f64;
        for op in ops {
            if op.backward {
                live -= stash_units;
            } else {
                live += stash_units;
                peak = peak.max(live);
            }
        }
        debug_assert!(live.abs() < 1e-9 * (1.0 + stash_units), "stash not drained: {live}");
        ma_peak_units.push(peak);
    }

    let totals: Vec<f64> = mw_units.iter().zip(&ma_peak_units).map(|(w, a)| w + a).collect();
    let mean_total = totals.iter().sum::<f64>() / totals.len() as f64;
    let variance_total =
        totals.iter().map(|t| (t - mean_total).powi(2)).sum::<f64>() / totals.len() as f64;

    UnitMemoryProfile { mw_units, ma_peak_units, mean_total, variance_total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PipelineConfig, Scheme};
    use crate::schedule::build_compute_schedule;

    fn profile(p: u32, b: u32, scheme: Scheme) -> UnitMemoryProfile {
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        unit_profile(&build_compute_schedule(&cfg).unwrap())
    }

    #[test]
    fn gpipe_stashes_every_microbatch_everywhere() {
        // Fig. 3(a): Ma peak = B units on all devices, Mw = 1 unit.
        let prof = profile(4, 4, Scheme::GPipe);
        assert_eq!(prof.mw_units, vec![1.0; 4]);
        assert_eq!(prof.ma_peak_units, vec![4.0; 4]);
    }

    #[test]
    fn dapple_peak_decreases_down_the_pipe() {
        // Fig. 3(b): staircase 4, 3, 2, 1 — the imbalance the paper calls
        // out.
        let prof = profile(4, 4, Scheme::Dapple);
        assert_eq!(prof.ma_peak_units, vec![4.0, 3.0, 2.0, 1.0]);
        assert_eq!(prof.mw_units, vec![1.0; 4]);
    }

    #[test]
    fn chimera_weights_double_but_activations_balance() {
        // Fig. 3(c): two replicas → Mw = 2 units per device.
        let prof = profile(4, 4, Scheme::Chimera);
        assert_eq!(prof.mw_units, vec![2.0; 4]);
        let max = prof.ma_peak_units.iter().cloned().fold(0.0, f64::max);
        let min = prof.ma_peak_units.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min <= 1.0, "chimera activations roughly balanced: {prof:?}");
    }

    #[test]
    fn hanayo_keeps_single_weight_copy() {
        // Fig. 3(d)/(e): Mw stays at 1 unit regardless of wave count —
        // the paper's headline memory claim.
        for waves in [1, 2, 4] {
            let prof = profile(4, 4, Scheme::Hanayo { waves });
            for &w in &prof.mw_units {
                assert!((w - 1.0).abs() < 1e-9, "W={waves}: {:?}", prof.mw_units);
            }
        }
    }

    #[test]
    fn hanayo_activation_peak_at_most_dapple_head() {
        let h = profile(4, 4, Scheme::Hanayo { waves: 2 });
        let d = profile(4, 4, Scheme::Dapple);
        let (hp, dp) = (h.highest_peak().unwrap(), d.highest_peak().unwrap());
        assert!(hp <= dp + 1e-9, "h={h:?} d={d:?}");
    }

    #[test]
    fn empty_profile_has_no_highest_peak() {
        // The old fold-from-zero reported 0.0 here — "fits anywhere".
        let empty = UnitMemoryProfile {
            mw_units: vec![],
            ma_peak_units: vec![],
            mean_total: 0.0,
            variance_total: 0.0,
        };
        assert_eq!(empty.highest_peak(), None);
        assert!(profile(4, 4, Scheme::GPipe).highest_peak().is_some());
    }

    #[test]
    fn stash_weight_scales_activation_peaks_linearly() {
        // Checkpointing shrinks every stash by the same factor, so the
        // replayed activation peak shrinks by exactly that factor too.
        let cfg = PipelineConfig::new(4, 4, Scheme::Hanayo { waves: 2 }).unwrap();
        let cs = build_compute_schedule(&cfg).unwrap();
        let full = unit_profile(&cs);
        let chunk = 4.0 / cs.stage_map.stages as f64;
        let ckpt = unit_profile_with(&cs, chunk / 16.0);
        for (a, b) in full.ma_peak_units.iter().zip(&ckpt.ma_peak_units) {
            assert!((a / 16.0 - b).abs() < 1e-12, "{a} vs {b}");
        }
        // Weights are untouched by the stash policy.
        assert_eq!(full.mw_units, ckpt.mw_units);
    }

    #[test]
    fn hanayo_is_more_balanced_than_dapple() {
        // §5.1: DAPPLE variance 16.85 vs Hanayo 1.44 (at 32-GPU scale);
        // the ordering must already hold at small scale.
        let h = profile(8, 8, Scheme::Hanayo { waves: 2 });
        let d = profile(8, 8, Scheme::Dapple);
        assert!(h.variance_total < d.variance_total, "hanayo {h:?} vs dapple {d:?}");
    }

    #[test]
    fn variance_of_constant_profile_is_zero() {
        let prof = profile(4, 4, Scheme::GPipe);
        assert!(prof.variance_total.abs() < 1e-9);
    }
}
