//! Unit-based memory accounting: the `M_w` / `M_a` annotations of Fig. 3.
//!
//! Units follow the paper's caption exactly:
//!
//! * one **weight unit** is "a whole model weight divided by the number of
//!   devices" — so a stage in a scheme with `S` stages weighs `P/S` units;
//! * one **activation unit** is "one intermediate activation": the stash of
//!   one micro-batch across `model/P` worth of layers — so one stage-chunk
//!   stash weighs `P/S` units.
//!
//! Activations are stashed when a forward completes and released when the
//! matching backward completes; replaying a schedule's per-device op order
//! yields the peak. This is what differentiates GPipe (all `B` stashes
//! live) from 1F1B-family schedules.

use crate::chain::ComputeSchedule;
use serde::{Deserialize, Serialize};

/// Per-device memory profile in Fig. 3's units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitMemoryProfile {
    /// Weight units resident per device (static).
    pub mw_units: Vec<f64>,
    /// Peak activation units per device over the iteration.
    pub ma_peak_units: Vec<f64>,
    /// Mean of the per-device peak totals (`mw + ma`).
    pub mean_total: f64,
    /// Population variance of the per-device peak totals — the imbalance
    /// statistic quoted in §5.1.
    pub variance_total: f64,
}

impl UnitMemoryProfile {
    /// Highest per-device total (weights + peak activations) — "the ability
    /// of a scheme to fit within a certain cluster is often determined by
    /// the highest peak memory" (§5.1).
    pub fn highest_peak(&self) -> f64 {
        self.mw_units.iter().zip(&self.ma_peak_units).map(|(w, a)| w + a).fold(0.0, f64::max)
    }
}

/// Replay a compute schedule and report per-device peaks in paper units.
///
/// Replaying the per-device op *order* is exact for peak accounting: a
/// stash interval on a device starts at its forward and ends at its
/// backward, and both endpoints live on the same device in every scheme
/// (the stash never migrates).
pub fn unit_profile(cs: &ComputeSchedule) -> UnitMemoryProfile {
    let p = cs.stage_map.devices as f64;
    let s = cs.stage_map.stages as f64;
    let chunk = p / s;

    let mw_units: Vec<f64> =
        cs.stage_map.stages_held().iter().map(|&held| held as f64 * chunk).collect();

    let mut ma_peak_units = Vec::with_capacity(cs.per_device.len());
    for ops in &cs.per_device {
        let mut live = 0.0f64;
        let mut peak = 0.0f64;
        for op in ops {
            if op.backward {
                live -= chunk;
            } else {
                live += chunk;
                peak = peak.max(live);
            }
        }
        debug_assert!(live.abs() < 1e-9, "stash not drained: {live}");
        ma_peak_units.push(peak);
    }

    let totals: Vec<f64> = mw_units.iter().zip(&ma_peak_units).map(|(w, a)| w + a).collect();
    let mean_total = totals.iter().sum::<f64>() / totals.len() as f64;
    let variance_total =
        totals.iter().map(|t| (t - mean_total).powi(2)).sum::<f64>() / totals.len() as f64;

    UnitMemoryProfile { mw_units, ma_peak_units, mean_total, variance_total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PipelineConfig, Scheme};
    use crate::schedule::build_compute_schedule;

    fn profile(p: u32, b: u32, scheme: Scheme) -> UnitMemoryProfile {
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        unit_profile(&build_compute_schedule(&cfg).unwrap())
    }

    #[test]
    fn gpipe_stashes_every_microbatch_everywhere() {
        // Fig. 3(a): Ma peak = B units on all devices, Mw = 1 unit.
        let prof = profile(4, 4, Scheme::GPipe);
        assert_eq!(prof.mw_units, vec![1.0; 4]);
        assert_eq!(prof.ma_peak_units, vec![4.0; 4]);
    }

    #[test]
    fn dapple_peak_decreases_down_the_pipe() {
        // Fig. 3(b): staircase 4, 3, 2, 1 — the imbalance the paper calls
        // out.
        let prof = profile(4, 4, Scheme::Dapple);
        assert_eq!(prof.ma_peak_units, vec![4.0, 3.0, 2.0, 1.0]);
        assert_eq!(prof.mw_units, vec![1.0; 4]);
    }

    #[test]
    fn chimera_weights_double_but_activations_balance() {
        // Fig. 3(c): two replicas → Mw = 2 units per device.
        let prof = profile(4, 4, Scheme::Chimera);
        assert_eq!(prof.mw_units, vec![2.0; 4]);
        let max = prof.ma_peak_units.iter().cloned().fold(0.0, f64::max);
        let min = prof.ma_peak_units.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min <= 1.0, "chimera activations roughly balanced: {prof:?}");
    }

    #[test]
    fn hanayo_keeps_single_weight_copy() {
        // Fig. 3(d)/(e): Mw stays at 1 unit regardless of wave count —
        // the paper's headline memory claim.
        for waves in [1, 2, 4] {
            let prof = profile(4, 4, Scheme::Hanayo { waves });
            for &w in &prof.mw_units {
                assert!((w - 1.0).abs() < 1e-9, "W={waves}: {:?}", prof.mw_units);
            }
        }
    }

    #[test]
    fn hanayo_activation_peak_at_most_dapple_head() {
        let h = profile(4, 4, Scheme::Hanayo { waves: 2 });
        let d = profile(4, 4, Scheme::Dapple);
        assert!(h.highest_peak() <= d.highest_peak() + 1e-9, "h={h:?} d={d:?}");
    }

    #[test]
    fn hanayo_is_more_balanced_than_dapple() {
        // §5.1: DAPPLE variance 16.85 vs Hanayo 1.44 (at 32-GPU scale);
        // the ordering must already hold at small scale.
        let h = profile(8, 8, Scheme::Hanayo { waves: 2 });
        let d = profile(8, 8, Scheme::Dapple);
        assert!(h.variance_total < d.variance_total, "hanayo {h:?} vs dapple {d:?}");
    }

    #[test]
    fn variance_of_constant_profile_is_zero() {
        let prof = profile(4, 4, Scheme::GPipe);
        assert!(prof.variance_total.abs() < 1e-9);
    }
}
