//! Property tests for the math substrate: gradients against finite
//! differences on random shapes, algebraic identities of the tensor ops,
//! and accumulation linearity.

use hanayo_tensor::loss::{mse, softmax_cross_entropy};
use hanayo_tensor::rng::{seeded, uniform};
use hanayo_tensor::{Stage, Tensor};
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-1.0f32..1.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
        c in tensor_strategy(4, 2),
    ) {
        // a(b + c) == ab + ac (exact: same operation order per element).
        let mut bc = b.clone();
        bc.add_assign(&c);
        let lhs = a.matmul(&bc);
        let mut rhs = a.matmul(&b);
        rhs.add_assign(&a.matmul(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn transpose_is_involutive(a in tensor_strategy(5, 3)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_transpose_identity(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
    ) {
        // (ab)^T == b^T a^T
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn mse_is_nonnegative_and_zero_iff_equal(a in tensor_strategy(2, 5)) {
        let (l_same, g) = mse(&a, &a);
        prop_assert_eq!(l_same, 0.0);
        prop_assert!(g.data.iter().all(|v| *v == 0.0));
        let mut b = a.clone();
        b.data[3] += 1.0;
        let (l_diff, _) = mse(&a, &b);
        prop_assert!(l_diff > 0.0);
    }

    #[test]
    fn xent_gradient_rows_sum_to_zero(
        logits in tensor_strategy(3, 5),
        labels in proptest::collection::vec(0usize..5, 3),
    ) {
        let (_, g) = softmax_cross_entropy(&logits, &labels);
        for r in 0..3 {
            let s: f32 = g.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {r} sums to {s}");
        }
    }

    #[test]
    fn stage_input_gradcheck_random_shapes(
        seed in 0u64..500,
        width in 4usize..10,
        depth in 1usize..3,
    ) {
        let stage = Stage::mlp(&mut seeded(seed), width, depth);
        let x = uniform(&mut seeded(seed + 1), 2, width, 0.7);
        let dy = uniform(&mut seeded(seed + 2), 2, width, 0.7);
        let (_, stash) = stage.forward(&x);
        let (dx, _) = stage.backward(&stash, &dy);
        let obj = |xx: &Tensor| -> f32 {
            let (y, _) = stage.forward(xx);
            y.data.iter().zip(&dy.data).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-2f32;
        // Check a handful of coordinates (full sweeps are the unit tests').
        for i in [0usize, width / 2, width, 2 * width - 1] {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp.data[i] += eps;
            xm.data[i] -= eps;
            let fd = (obj(&xp) - obj(&xm)) / (2.0 * eps);
            prop_assert!(
                (fd - dx.data[i]).abs() < 5e-2 * (1.0 + fd.abs()),
                "seed {seed} i={i}: fd {fd} vs {}",
                dx.data[i]
            );
        }
    }

    #[test]
    fn gradient_accumulation_is_linear(
        seed in 0u64..500,
    ) {
        let stage = Stage::mlp(&mut seeded(seed), 6, 1);
        let x1 = uniform(&mut seeded(seed + 1), 2, 6, 0.5);
        let x2 = uniform(&mut seeded(seed + 2), 2, 6, 0.5);
        let dy = uniform(&mut seeded(seed + 3), 2, 6, 0.5);
        let g = |x: &Tensor| {
            let (_, stash) = stage.forward(x);
            stage.backward(&stash, &dy).1
        };
        let mut acc = stage.zero_grads();
        acc.accumulate(&g(&x1));
        acc.accumulate(&g(&x2));
        let mut acc_rev = stage.zero_grads();
        acc_rev.accumulate(&g(&x2));
        acc_rev.accumulate(&g(&x1));
        // Addition of two grads is commutative to float tolerance...
        let diff = acc
            .flat()
            .iter()
            .zip(acc_rev.flat())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        prop_assert!(diff < 1e-6);
    }

    #[test]
    fn forward_is_pure(seed in 0u64..200) {
        let stage = Stage::mlp(&mut seeded(seed), 8, 2);
        let x = uniform(&mut seeded(seed + 9), 3, 8, 0.9);
        let (y1, _) = stage.forward(&x);
        let (y2, _) = stage.forward(&x);
        prop_assert_eq!(y1, y2);
    }
}
