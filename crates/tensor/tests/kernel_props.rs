//! Bitwise-identity property tests for the gemm fast path.
//!
//! The determinism contract of the tensor substrate: the blocked/unrolled
//! serial kernel, the row-parallel dispatch, and the fused transposed
//! kernels (`matmul_at_b`, `matmul_a_bt`) all produce outputs **bitwise
//! identical** to the frozen scalar seed kernel (`matmul_reference`) on
//! every input. Shapes are drawn to straddle both the new flops gate and
//! the old element-count gate so serial and parallel dispatches are
//! exercised; values are dense (every element nonzero with probability 1)
//! so a changed reduction order shows up in the low bits — the failure the
//! old identity-matrix test could never see.
//!
//! Seeds live in `proptest-regressions/kernel_props.txt` (committed); they
//! replay first on every run.

use hanayo_tensor::tensor::matmul_parallelizes;
use hanayo_tensor::Tensor;
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> BoxedStrategy<Tensor> {
    proptest::collection::vec(-100.0f32..100.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
        .boxed()
}

/// `(a, b)` pairs for `a × b`: dims span 1..=9 rows by up to 130/90 inner/
/// outer columns, so `m*k*n` straddles `PAR_FLOP_THRESHOLD` (32k) and
/// `m*n` straddles the reference kernel's 4096-element gate.
fn matmul_pair() -> BoxedStrategy<(Tensor, Tensor)> {
    (1usize..9, 1usize..130, 1usize..90)
        .prop_flat_map(|(m, k, n)| (tensor_strategy(m, k), tensor_strategy(k, n)))
        .boxed()
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_and_parallel_matmul_match_reference_bitwise(
        (a, b) in matmul_pair(),
    ) {
        let fast = a.matmul(&b);
        let reference = a.matmul_reference(&b);
        prop_assert_eq!(
            bits(&fast), bits(&reference),
            "[{},{}]x[{},{}] parallel={}",
            a.rows, a.cols, b.rows, b.cols,
            matmul_parallelizes(a.rows, a.cols, b.cols)
        );
    }

    #[test]
    fn fused_at_b_matches_transpose_then_matmul_bitwise(
        (a, b) in (1usize..40, 1usize..40, 1usize..40)
            .prop_flat_map(|(m, ka, n)| (tensor_strategy(m, ka), tensor_strategy(m, n)))
            .boxed(),
    ) {
        // aᵀ × b without materializing aᵀ ≡ transpose-then-matmul, to the bit
        // (both the frozen seed route and the current fast route).
        let fused = a.matmul_at_b(&b);
        prop_assert_eq!(bits(&fused), bits(&a.transpose().matmul_reference(&b)));
        prop_assert_eq!(bits(&fused), bits(&a.transpose().matmul(&b)));
    }

    #[test]
    fn fused_a_bt_matches_matmul_then_transpose_bitwise(
        (a, b) in (1usize..40, 1usize..40, 1usize..40)
            .prop_flat_map(|(m, k, n)| (tensor_strategy(m, k), tensor_strategy(n, k)))
            .boxed(),
    ) {
        let fused = a.matmul_a_bt(&b);
        prop_assert_eq!(bits(&fused), bits(&a.matmul_reference(&b.transpose())));
        prop_assert_eq!(bits(&fused), bits(&a.matmul(&b.transpose())));
    }
}
