//! Pipeline stage modules: the unit of model partitioning.
//!
//! A [`Stage`] is a sequential stack of [`Block`]s — the "local module" a
//! device executes when its action list says `Forward(mb, stage)`. Forward
//! returns an explicit [`StageStash`] that the engine keeps until the
//! matching backward; backward returns the input gradient (to send
//! upstream) and a [`StageGrads`] container that supports deterministic,
//! order-controlled accumulation across micro-batches.

use crate::ops;
use crate::rng;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// One primitive layer inside a stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Block {
    /// Affine map `y = x·W + b`.
    Linear {
        /// Weight `[in, out]`.
        w: Tensor,
        /// Bias `[out]`.
        b: Vec<f32>,
    },
    /// Exact GELU activation.
    Gelu,
    /// ReLU activation.
    Relu,
    /// Row-wise layer normalisation with learned gain/bias.
    LayerNorm {
        /// Per-feature gain.
        gain: Vec<f32>,
        /// Per-feature bias.
        bias: Vec<f32>,
        /// Variance epsilon.
        eps: f32,
    },
}

/// Saved forward state of one block, consumed by its backward.
#[derive(Debug, Clone)]
pub enum BlockStash {
    /// Linear saves its input.
    Input(Tensor),
    /// LayerNorm saves the normalised activations and the inverse std.
    Norm {
        /// Normalised (pre-affine) activations.
        xhat: Tensor,
        /// Saved `1/σ` per row.
        inv_std: Vec<f32>,
    },
}

/// Saved forward state of a whole stage for one micro-batch.
#[derive(Debug, Clone)]
pub struct StageStash {
    per_block: Vec<BlockStash>,
}

impl StageStash {
    /// Approximate resident bytes of this stash (activation memory).
    pub fn bytes(&self) -> usize {
        self.per_block
            .iter()
            .map(|s| match s {
                BlockStash::Input(t) => t.len() * 4,
                BlockStash::Norm { xhat, inv_std } => xhat.len() * 4 + inv_std.len() * 4,
            })
            .sum()
    }
}

/// Parameter gradients of one block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BlockGrads {
    /// Gradients of a linear block.
    Linear {
        /// `dL/dW`.
        dw: Tensor,
        /// `dL/db`.
        db: Vec<f32>,
    },
    /// Parameter-free block.
    None,
    /// Gradients of a layernorm block.
    LayerNorm {
        /// `dL/dgain`.
        dgain: Vec<f32>,
        /// `dL/dbias`.
        dbias: Vec<f32>,
    },
}

/// Parameter gradients of a whole stage; supports exact accumulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageGrads {
    /// One entry per block, aligned with the stage's block list.
    pub per_block: Vec<BlockGrads>,
}

impl StageGrads {
    /// Accumulate `other` into `self` (element-wise add, fixed order).
    pub fn accumulate(&mut self, other: &StageGrads) {
        assert_eq!(self.per_block.len(), other.per_block.len());
        for (a, b) in self.per_block.iter_mut().zip(&other.per_block) {
            match (a, b) {
                (BlockGrads::Linear { dw, db }, BlockGrads::Linear { dw: dw2, db: db2 }) => {
                    dw.add_assign(dw2);
                    for (x, y) in db.iter_mut().zip(db2) {
                        *x += y;
                    }
                }
                (
                    BlockGrads::LayerNorm { dgain, dbias },
                    BlockGrads::LayerNorm { dgain: g2, dbias: b2 },
                ) => {
                    for (x, y) in dgain.iter_mut().zip(g2) {
                        *x += y;
                    }
                    for (x, y) in dbias.iter_mut().zip(b2) {
                        *x += y;
                    }
                }
                (BlockGrads::None, BlockGrads::None) => {}
                _ => panic!("gradient shape mismatch"),
            }
        }
    }

    /// Scale all gradients (e.g. by `1/B` for mean-reduction losses).
    pub fn scale(&mut self, alpha: f32) {
        for g in &mut self.per_block {
            match g {
                BlockGrads::Linear { dw, db } => {
                    dw.scale(alpha);
                    for v in db {
                        *v *= alpha;
                    }
                }
                BlockGrads::LayerNorm { dgain, dbias } => {
                    for v in dgain {
                        *v *= alpha;
                    }
                    for v in dbias {
                        *v *= alpha;
                    }
                }
                BlockGrads::None => {}
            }
        }
    }

    /// Flatten to a single vector (testing / optimizer state bootstrap).
    pub fn flat(&self) -> Vec<f32> {
        let mut out = Vec::new();
        for g in &self.per_block {
            match g {
                BlockGrads::Linear { dw, db } => {
                    out.extend_from_slice(&dw.data);
                    out.extend_from_slice(db);
                }
                BlockGrads::LayerNorm { dgain, dbias } => {
                    out.extend_from_slice(dgain);
                    out.extend_from_slice(dbias);
                }
                BlockGrads::None => {}
            }
        }
        out
    }
}

/// A sequential stack of blocks — one pipeline stage's local module.
///
/// Serde round-trips are bit-exact (see [`Tensor`]), so a stage written
/// into a checkpoint and read back trains on from *identical* weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// The blocks, applied in order.
    pub blocks: Vec<Block>,
}

impl Stage {
    /// An MLP stage: `depth` repetitions of `LayerNorm → Linear → Gelu`
    /// at a fixed `width`. The shape every model builder in
    /// `hanayo-model` uses.
    pub fn mlp(rng: &mut StdRng, width: usize, depth: usize) -> Stage {
        let mut blocks = Vec::with_capacity(3 * depth);
        for _ in 0..depth {
            blocks.push(Block::LayerNorm {
                gain: vec![1.0; width],
                bias: vec![0.0; width],
                eps: 1e-5,
            });
            blocks.push(Block::Linear { w: rng::he_init(rng, width, width), b: vec![0.0; width] });
            blocks.push(Block::Gelu);
        }
        Stage { blocks }
    }

    /// An empty stage (identity). Used for zero-layer partitions.
    pub fn identity() -> Stage {
        Stage { blocks: Vec::new() }
    }

    /// All parameters flattened into one vector (block order, weights
    /// before biases). Useful for checkpoints and cross-run comparisons.
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for block in &self.blocks {
            match block {
                Block::Linear { w, b } => {
                    out.extend_from_slice(&w.data);
                    out.extend_from_slice(b);
                }
                Block::LayerNorm { gain, bias, .. } => {
                    out.extend_from_slice(gain);
                    out.extend_from_slice(bias);
                }
                _ => {}
            }
        }
        out
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| match b {
                Block::Linear { w, b } => w.len() + b.len(),
                Block::LayerNorm { gain, bias, .. } => gain.len() + bias.len(),
                _ => 0,
            })
            .sum()
    }

    /// Forward pass; returns the output and the stash for backward.
    ///
    /// Activations move into the stash instead of being cloned, and the
    /// bias / affine loops run row-wise over slices — the iteration order
    /// (rows outer, columns inner) and the per-element operations are the
    /// seed's exactly, so outputs are bitwise unchanged.
    pub fn forward(&self, x: &Tensor) -> (Tensor, StageStash) {
        let mut cur = x.clone();
        let mut per_block = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            match block {
                Block::Linear { w, b } => {
                    let mut y = cur.matmul(w);
                    for row in y.data.chunks_mut(y.cols) {
                        for (v, &bias) in row.iter_mut().zip(b) {
                            *v += bias;
                        }
                    }
                    per_block.push(BlockStash::Input(std::mem::replace(&mut cur, y)));
                }
                Block::Gelu => {
                    let y = ops::gelu(&cur);
                    per_block.push(BlockStash::Input(std::mem::replace(&mut cur, y)));
                }
                Block::Relu => {
                    let y = ops::relu(&cur);
                    per_block.push(BlockStash::Input(std::mem::replace(&mut cur, y)));
                }
                Block::LayerNorm { gain, bias, eps } => {
                    let (xhat, _means, inv_std) = ops::layernorm(&cur, *eps);
                    let mut y = xhat.clone();
                    for row in y.data.chunks_mut(y.cols) {
                        for ((v, &g), &bv) in row.iter_mut().zip(gain).zip(bias) {
                            *v = *v * g + bv;
                        }
                    }
                    per_block.push(BlockStash::Norm { xhat, inv_std });
                    cur = y;
                }
            }
        }
        (cur, StageStash { per_block })
    }

    /// Backward pass; returns `(dL/dx, parameter gradients)`.
    ///
    /// Linear blocks route through the fused transposed kernels
    /// ([`Tensor::matmul_at_b`] / [`Tensor::matmul_a_bt`]) instead of
    /// materializing `xᵀ` / `Wᵀ` copies per micro-batch; the kernels are
    /// bitwise identical to the transpose-then-matmul seed path (under
    /// [`crate::tensor::set_reference_kernels`] they *are* the seed path),
    /// so gradients are unchanged to the bit.
    pub fn backward(&self, stash: &StageStash, dy: &Tensor) -> (Tensor, StageGrads) {
        assert_eq!(stash.per_block.len(), self.blocks.len(), "stash mismatch");
        let mut grad = dy.clone();
        let mut per_block: Vec<BlockGrads> = vec![BlockGrads::None; self.blocks.len()];
        for (i, block) in self.blocks.iter().enumerate().rev() {
            match (block, &stash.per_block[i]) {
                (Block::Linear { w, .. }, BlockStash::Input(x)) => {
                    let dw = x.matmul_at_b(&grad);
                    let db = grad.col_sum();
                    grad = grad.matmul_a_bt(w);
                    per_block[i] = BlockGrads::Linear { dw, db };
                }
                (Block::Gelu, BlockStash::Input(x)) => {
                    grad = ops::gelu_backward(x, &grad);
                }
                (Block::Relu, BlockStash::Input(x)) => {
                    grad = ops::relu_backward(x, &grad);
                }
                (Block::LayerNorm { gain, .. }, BlockStash::Norm { xhat, inv_std }) => {
                    // d/dgain, d/dbias, then chain through the normalisation.
                    // Row-wise slice walks; same (row outer, column inner)
                    // order and arithmetic as the seed's indexed loops.
                    let mut dgain = vec![0.0f32; gain.len()];
                    let dbias = grad.col_sum();
                    for (grow, xrow) in grad.data.chunks(grad.cols).zip(xhat.data.chunks(xhat.cols))
                    {
                        for ((d, &g), &xh) in dgain.iter_mut().zip(grow).zip(xrow) {
                            *d += g * xh;
                        }
                    }
                    let mut dxhat = grad.clone();
                    for row in dxhat.data.chunks_mut(dxhat.cols) {
                        for (v, &g) in row.iter_mut().zip(gain) {
                            *v *= g;
                        }
                    }
                    grad = ops::layernorm_backward(xhat, inv_std, &dxhat);
                    per_block[i] = BlockGrads::LayerNorm { dgain, dbias };
                }
                _ => panic!("block/stash kind mismatch at {i}"),
            }
        }
        (grad, StageGrads { per_block })
    }

    /// Zero-initialised gradient container matching this stage's shapes.
    pub fn zero_grads(&self) -> StageGrads {
        let per_block = self
            .blocks
            .iter()
            .map(|b| match b {
                Block::Linear { w, b } => {
                    BlockGrads::Linear { dw: Tensor::zeros(w.rows, w.cols), db: vec![0.0; b.len()] }
                }
                Block::LayerNorm { gain, bias, .. } => BlockGrads::LayerNorm {
                    dgain: vec![0.0; gain.len()],
                    dbias: vec![0.0; bias.len()],
                },
                _ => BlockGrads::None,
            })
            .collect();
        StageGrads { per_block }
    }

    /// Plain SGD update: `θ ← θ - lr · g`.
    pub fn sgd_step(&mut self, grads: &StageGrads, lr: f32) {
        assert_eq!(grads.per_block.len(), self.blocks.len());
        for (block, g) in self.blocks.iter_mut().zip(&grads.per_block) {
            match (block, g) {
                (Block::Linear { w, b }, BlockGrads::Linear { dw, db }) => {
                    w.axpy(-lr, dw);
                    for (p, d) in b.iter_mut().zip(db) {
                        *p -= lr * d;
                    }
                }
                (Block::LayerNorm { gain, bias, .. }, BlockGrads::LayerNorm { dgain, dbias }) => {
                    for (p, d) in gain.iter_mut().zip(dgain) {
                        *p -= lr * d;
                    }
                    for (p, d) in bias.iter_mut().zip(dbias) {
                        *p -= lr * d;
                    }
                }
                (_, BlockGrads::None) => {}
                _ => panic!("gradient/block mismatch"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn tiny_stage() -> Stage {
        Stage::mlp(&mut seeded(42), 6, 2)
    }

    #[test]
    fn forward_preserves_width() {
        let s = tiny_stage();
        let x = rng::uniform(&mut seeded(1), 3, 6, 1.0);
        let (y, stash) = s.forward(&x);
        assert_eq!((y.rows, y.cols), (3, 6));
        assert_eq!(stash.per_block.len(), s.blocks.len());
        assert!(stash.bytes() > 0);
    }

    #[test]
    fn param_count_matches_structure() {
        let s = tiny_stage();
        // 2 × (LayerNorm 6+6 + Linear 36+6 + Gelu 0)
        assert_eq!(s.param_count(), 2 * (12 + 42));
    }

    #[test]
    fn stage_gradcheck_against_finite_differences() {
        // Scalar objective: sum(dy ⊙ stage(x)); check d/dx.
        let s = tiny_stage();
        let x = rng::uniform(&mut seeded(2), 2, 6, 0.8);
        let dy = rng::uniform(&mut seeded(3), 2, 6, 1.0);
        let (_, stash) = s.forward(&x);
        let (dx, _) = s.backward(&stash, &dy);
        let eps = 1e-2f32;
        let obj = |xx: &Tensor| -> f32 {
            let (y, _) = s.forward(xx);
            y.data.iter().zip(&dy.data).map(|(a, b)| a * b).sum()
        };
        for i in 0..x.len() {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp.data[i] += eps;
            xm.data[i] -= eps;
            let fd = (obj(&xp) - obj(&xm)) / (2.0 * eps);
            assert!(
                (fd - dx.data[i]).abs() < 3e-2 * (1.0 + fd.abs()),
                "i={i}: fd={fd} analytic={}",
                dx.data[i]
            );
        }
    }

    #[test]
    fn weight_gradcheck_one_linear() {
        // Perturb one weight and compare the objective delta with dw.
        let mut s = tiny_stage();
        let x = rng::uniform(&mut seeded(4), 2, 6, 0.5);
        let dy = rng::uniform(&mut seeded(5), 2, 6, 0.7);
        let (_, stash) = s.forward(&x);
        let (_, grads) = s.backward(&stash, &dy);
        let BlockGrads::Linear { dw, .. } = grads.per_block[1].clone() else {
            panic!("block 1 should be linear")
        };
        let eps = 1e-2f32;
        let obj = |stage: &Stage| -> f32 {
            let (y, _) = stage.forward(&x);
            y.data.iter().zip(&dy.data).map(|(a, b)| a * b).sum()
        };
        let base_idx = 7;
        let Block::Linear { w, .. } = &mut s.blocks[1] else { unreachable!() };
        w.data[base_idx] += eps;
        let plus = obj(&s);
        let Block::Linear { w, .. } = &mut s.blocks[1] else { unreachable!() };
        w.data[base_idx] -= 2.0 * eps;
        let minus = obj(&s);
        let fd = (plus - minus) / (2.0 * eps);
        assert!(
            (fd - dw.data[base_idx]).abs() < 3e-2 * (1.0 + fd.abs()),
            "fd={fd} analytic={}",
            dw.data[base_idx]
        );
    }

    #[test]
    fn accumulate_is_addition() {
        let s = tiny_stage();
        let x = rng::uniform(&mut seeded(6), 2, 6, 0.5);
        let dy = rng::uniform(&mut seeded(7), 2, 6, 0.5);
        let (_, stash) = s.forward(&x);
        let (_, g) = s.backward(&stash, &dy);
        let mut acc = s.zero_grads();
        acc.accumulate(&g);
        acc.accumulate(&g);
        let mut doubled = g.clone();
        doubled.scale(2.0);
        let max_diff = acc
            .flat()
            .iter()
            .zip(doubled.flat())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 1e-6);
    }

    #[test]
    fn sgd_reduces_objective() {
        let mut s = tiny_stage();
        let x = rng::uniform(&mut seeded(8), 4, 6, 0.5);
        let target = rng::uniform(&mut seeded(9), 4, 6, 0.5);
        let loss_of = |stage: &Stage| {
            let (y, _) = stage.forward(&x);
            let mut diff = y.clone();
            diff.axpy(-1.0, &target);
            diff.norm()
        };
        let before = loss_of(&s);
        for _ in 0..20 {
            let (y, stash) = s.forward(&x);
            let mut dy = y.clone();
            dy.axpy(-1.0, &target);
            dy.scale(2.0 / y.len() as f32);
            let (_, grads) = s.backward(&stash, &dy);
            s.sgd_step(&grads, 0.05);
        }
        let after = loss_of(&s);
        assert!(after < before, "loss did not go down: {before} -> {after}");
    }

    #[test]
    fn stage_serde_roundtrip_is_bit_exact() {
        let s = tiny_stage();
        let json = serde_json::to_string(&s).unwrap();
        let back: Stage = serde_json::from_str(&json).unwrap();
        // PartialEq on f32 treats -0.0 == 0.0; compare the raw bits too.
        assert_eq!(back, s);
        let bits = |st: &Stage| st.flat_params().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back), bits(&s), "parameter bits drifted through serde");
    }

    #[test]
    fn grads_serde_roundtrip_is_bit_exact() {
        let s = tiny_stage();
        let x = rng::uniform(&mut seeded(11), 2, 6, 0.5);
        let dy = rng::uniform(&mut seeded(12), 2, 6, 0.5);
        let (_, stash) = s.forward(&x);
        let (_, g) = s.backward(&stash, &dy);
        let back: StageGrads = serde_json::from_str(&serde_json::to_string(&g).unwrap()).unwrap();
        let bits = |g: &StageGrads| g.flat().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back), bits(&g));
    }

    #[test]
    fn forward_backward_bits_identical_under_reference_kernels() {
        // The whole-stage A/B: fast kernels vs the frozen seed route must
        // agree to the bit on activations, input grads and weight grads.
        let s = Stage::mlp(&mut seeded(77), 12, 3);
        let x = rng::uniform(&mut seeded(78), 5, 12, 0.9);
        let dy = rng::uniform(&mut seeded(79), 5, 12, 0.9);
        let (y_fast, stash_fast) = s.forward(&x);
        let (dx_fast, g_fast) = s.backward(&stash_fast, &dy);
        crate::tensor::set_reference_kernels(true);
        let (y_ref, stash_ref) = s.forward(&x);
        let (dx_ref, g_ref) = s.backward(&stash_ref, &dy);
        crate::tensor::set_reference_kernels(false);
        let bits = |v: &[f32]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&y_fast.data), bits(&y_ref.data), "activations drift");
        assert_eq!(bits(&dx_fast.data), bits(&dx_ref.data), "input grads drift");
        assert_eq!(bits(&g_fast.flat()), bits(&g_ref.flat()), "weight grads drift");
    }

    #[test]
    fn identity_stage_passes_through() {
        let s = Stage::identity();
        let x = rng::uniform(&mut seeded(10), 2, 4, 1.0);
        let (y, stash) = s.forward(&x);
        assert_eq!(y, x);
        let (dx, grads) = s.backward(&stash, &x);
        assert_eq!(dx, x);
        assert!(grads.per_block.is_empty());
    }
}
