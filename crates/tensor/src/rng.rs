//! Seeded, reproducible initialisation. Every weight in every test and
//! benchmark comes from here, which is what makes cross-engine gradient
//! comparisons exact.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// The seeded stream at an exact position: `seeded(seed)` fast-forwarded
/// past `draws` scalar draws. This is how a checkpoint records "where the
/// data stream was": resuming from `(seed, draws)` continues the *same*
/// stream the uninterrupted run would have consumed, which is one of the
/// ingredients of bit-identical resume (`hanayo-ckpt`'s `RngCursor`).
///
/// Fast-forwarding replays (and discards) the skipped draws, so it costs
/// `O(draws)` — fine for the micro-model data sizes this repo trains.
pub fn seeded_at(seed: u64, draws: u64) -> StdRng {
    let mut rng = seeded(seed);
    for _ in 0..draws {
        let _: f32 = rng.random();
    }
    rng
}

/// Uniform tensor in `[-limit, limit)`.
pub fn uniform(rng: &mut StdRng, rows: usize, cols: usize, limit: f32) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.random::<f32>() * 2.0 * limit - limit).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Kaiming/He-style init for a `fan_in → fan_out` linear layer:
/// uniform with limit `sqrt(6 / fan_in)`.
pub fn he_init(rng: &mut StdRng, fan_in: usize, fan_out: usize) -> Tensor {
    let limit = (6.0 / fan_in as f32).sqrt();
    uniform(rng, fan_in, fan_out, limit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_weights() {
        let a = he_init(&mut seeded(7), 16, 8);
        let b = he_init(&mut seeded(7), 16, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_weights() {
        let a = he_init(&mut seeded(7), 16, 8);
        let b = he_init(&mut seeded(8), 16, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn seeded_stream_is_pinned() {
        // The exact draws of seed 42 are frozen: every cross-engine
        // gradient-equivalence test initialises weights through this
        // stream, so a silent RNG change would invalidate all recorded
        // baselines. If the generator changes intentionally, update these
        // constants and regenerate the golden schedule snapshots.
        let t = uniform(&mut seeded(42), 1, 4, 1.0);
        assert_eq!(t.data, vec![0.48312974, -0.68017924, -0.44279778, -0.3116187]);
    }

    #[test]
    fn seeded_at_continues_the_same_stream() {
        // Draw 10 values straight through, then reproduce the tail from a
        // fast-forwarded stream: positions 4.. must match bit for bit.
        let full = uniform(&mut seeded(9), 1, 10, 1.0);
        let tail = uniform(&mut seeded_at(9, 4), 1, 6, 1.0);
        assert_eq!(&full.data[4..], &tail.data[..]);
        // Position 0 is the plain seeded stream.
        assert_eq!(uniform(&mut seeded_at(9, 0), 1, 3, 1.0), uniform(&mut seeded(9), 1, 3, 1.0));
    }

    #[test]
    fn uniform_respects_limit() {
        let t = uniform(&mut seeded(1), 10, 10, 0.5);
        assert!(t.data.iter().all(|v| (-0.5..0.5).contains(v)));
    }

    #[test]
    fn he_limit_shrinks_with_fan_in() {
        let wide = he_init(&mut seeded(3), 1024, 4);
        let narrow = he_init(&mut seeded(3), 4, 4);
        let max_wide = wide.data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let max_narrow = narrow.data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(max_wide < max_narrow);
    }
}
