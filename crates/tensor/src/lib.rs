//! # hanayo-tensor
//!
//! A small, deterministic dense-f32 tensor substrate: just enough numeric
//! machinery to train real models through the Hanayo runtime and prove that
//! every synchronous pipeline schedule computes *exactly* the same
//! gradients as sequential execution.
//!
//! Design choices:
//!
//! * **Functional layers** — [`stage::Stage::forward`] returns an explicit
//!   stash and [`stage::Stage::backward`] consumes it. Pipeline engines own
//!   the stash lifetime (that is the whole memory story of the paper), so
//!   the math layer must not hide it.
//! * **Determinism** — seeded init ([`rng`]), row-parallel matmul with
//!   fixed per-element reduction order, and gradient containers that
//!   support order-controlled accumulation.
//! * **No autograd graph** — backward passes are hand-written per block and
//!   verified against finite differences in the test suite.

// Numeric kernels index rows/columns explicitly; iterator-chain rewrites of
// these loops obscure the math without measurable benefit.
#![allow(clippy::needless_range_loop)]

pub mod loss;
pub mod ops;
pub mod optim;
pub mod rng;
pub mod stage;
pub mod tensor;

pub use stage::{Block, Stage, StageGrads, StageStash};
pub use tensor::Tensor;
