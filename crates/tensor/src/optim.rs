//! Optimizers: plain SGD and Adam, operating on a [`Stage`] and its
//! [`StageGrads`]. Both are deterministic given a deterministic gradient
//! stream.

use crate::stage::{Block, BlockGrads, Stage, StageGrads};
use serde::{Deserialize, Serialize};

/// Stochastic gradient descent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Apply one update.
    pub fn step(&self, stage: &mut Stage, grads: &StageGrads) {
        stage.sgd_step(grads, self.lr);
    }
}

/// Adam (Kingma & Ba 2015) with bias correction; the optimizer the paper's
/// memory accounting assumes (two f32 moments per parameter).
///
/// The full state — hyper-parameters, step counter and both moment
/// estimates — serde-round-trips bit-exactly, so an optimizer restored
/// from a checkpoint continues the *identical* update sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical epsilon.
    pub eps: f32,
    t: u32,
    m: StageGrads,
    v: StageGrads,
}

impl Adam {
    /// Create Adam state matching `stage`'s parameter shapes.
    pub fn new(stage: &Stage, lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: stage.zero_grads(),
            v: stage.zero_grads(),
        }
    }

    /// Bytes of optimizer state (two moments per parameter).
    pub fn state_bytes(&self) -> usize {
        self.m.flat().len() * 8
    }

    /// Apply one update.
    pub fn step(&mut self, stage: &mut Stage, grads: &StageGrads) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (b1, b2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);

        let update = |p: &mut f32, g: f32, m: &mut f32, v: &mut f32| {
            *m = b1 * *m + (1.0 - b1) * g;
            *v = b2 * *v + (1.0 - b2) * g * g;
            let mhat = *m / bc1;
            let vhat = *v / bc2;
            *p -= lr * mhat / (vhat.sqrt() + eps);
        };

        for (((block, g), m), v) in stage
            .blocks
            .iter_mut()
            .zip(&grads.per_block)
            .zip(&mut self.m.per_block)
            .zip(&mut self.v.per_block)
        {
            match (block, g, m, v) {
                (
                    Block::Linear { w, b },
                    BlockGrads::Linear { dw, db },
                    BlockGrads::Linear { dw: mw, db: mb },
                    BlockGrads::Linear { dw: vw, db: vb },
                ) => {
                    for i in 0..w.data.len() {
                        update(&mut w.data[i], dw.data[i], &mut mw.data[i], &mut vw.data[i]);
                    }
                    for i in 0..b.len() {
                        update(&mut b[i], db[i], &mut mb[i], &mut vb[i]);
                    }
                }
                (
                    Block::LayerNorm { gain, bias, .. },
                    BlockGrads::LayerNorm { dgain, dbias },
                    BlockGrads::LayerNorm { dgain: mg, dbias: mbias },
                    BlockGrads::LayerNorm { dgain: vg, dbias: vbias },
                ) => {
                    for i in 0..gain.len() {
                        update(&mut gain[i], dgain[i], &mut mg[i], &mut vg[i]);
                    }
                    for i in 0..bias.len() {
                        update(&mut bias[i], dbias[i], &mut mbias[i], &mut vbias[i]);
                    }
                }
                (_, BlockGrads::None, BlockGrads::None, BlockGrads::None) => {}
                _ => panic!("optimizer state shape mismatch"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse;
    use crate::rng::{seeded, uniform};

    /// Teacher-student fit: the target is produced by a frozen stage of the
    /// same architecture, so it is actually reachable (GELU's output floor
    /// makes arbitrary targets unreachable). Returns (initial, final) loss.
    fn train_loss<F: FnMut(&mut Stage, &StageGrads)>(mut step: F) -> (f32, f32) {
        let mut s = Stage::mlp(&mut seeded(20), 8, 1);
        let teacher = Stage::mlp(&mut seeded(99), 8, 1);
        let x = uniform(&mut seeded(21), 8, 8, 0.5);
        let (target, _) = teacher.forward(&x);
        let initial = mse(&s.forward(&x).0, &target).0;
        for _ in 0..60 {
            let (y, stash) = s.forward(&x);
            let (_, dy) = mse(&y, &target);
            let (_, grads) = s.backward(&stash, &dy);
            step(&mut s, &grads);
        }
        let (y, _) = s.forward(&x);
        (initial, mse(&y, &target).0)
    }

    #[test]
    fn sgd_trains() {
        let sgd = Sgd { lr: 0.1 };
        let (before, after) = train_loss(|s, g| sgd.step(s, g));
        assert!(after < 0.5 * before, "sgd loss {before} -> {after}");
    }

    #[test]
    fn adam_trains() {
        let mut adam: Option<Adam> = None;
        let (before, after) = train_loss(|s, g| {
            let a = adam.get_or_insert_with(|| Adam::new(s, 0.01));
            a.step(s, g);
        });
        assert!(after < 0.5 * before, "adam loss {before} -> {after}");
    }

    #[test]
    fn adam_state_matches_param_count() {
        let s = Stage::mlp(&mut seeded(23), 8, 2);
        let adam = Adam::new(&s, 0.01);
        assert_eq!(adam.state_bytes(), s.param_count() * 8);
    }

    #[test]
    fn optimizer_state_serde_resumes_identically() {
        // Train 3 steps, checkpoint the (stage, adam) pair through JSON,
        // train 3 more on both the original and the restored state: the
        // trajectories must be bit-identical.
        let x = uniform(&mut seeded(30), 4, 6, 0.5);
        let t = uniform(&mut seeded(31), 4, 6, 0.5);
        let step = |s: &mut Stage, adam: &mut Adam| {
            let (y, stash) = s.forward(&x);
            let (_, dy) = mse(&y, &t);
            let (_, g) = s.backward(&stash, &dy);
            adam.step(s, &g);
        };
        let mut s = Stage::mlp(&mut seeded(32), 6, 1);
        let mut adam = Adam::new(&s, 0.02);
        for _ in 0..3 {
            step(&mut s, &mut adam);
        }
        let mut s2: Stage = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        let mut adam2: Adam = serde_json::from_str(&serde_json::to_string(&adam).unwrap()).unwrap();
        assert_eq!(adam2, adam);
        for _ in 0..3 {
            step(&mut s, &mut adam);
            step(&mut s2, &mut adam2);
        }
        assert_eq!(s, s2, "restored optimizer state diverged from the uninterrupted run");
        // Plain SGD state round-trips too (it is just the learning rate).
        let sgd = Sgd { lr: 0.1 };
        let back: Sgd = serde_json::from_str(&serde_json::to_string(&sgd).unwrap()).unwrap();
        assert_eq!(back, sgd);
    }

    #[test]
    fn adam_is_deterministic() {
        let run = || {
            let mut s = Stage::mlp(&mut seeded(24), 6, 1);
            let mut adam = Adam::new(&s, 0.02);
            let x = uniform(&mut seeded(25), 4, 6, 0.5);
            let t = uniform(&mut seeded(26), 4, 6, 0.5);
            for _ in 0..5 {
                let (y, stash) = s.forward(&x);
                let (_, dy) = mse(&y, &t);
                let (_, g) = s.backward(&stash, &dy);
                adam.step(&mut s, &g);
            }
            s
        };
        assert_eq!(run(), run());
    }
}
