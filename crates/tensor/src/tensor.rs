//! The dense row-major f32 matrix at the bottom of everything.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Row-major 2-D f32 tensor. Rows are samples (the micro-batch dimension),
/// columns are features.
///
/// Serde round-trips are **bit-exact** for finite values: every `f32`
/// widens losslessly to `f64`, the JSON writer renders the shortest
/// round-trip form, and narrowing back recovers the original bits — the
/// property the checkpoint format (`hanayo-ckpt`) is built on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// `rows * cols` values, row-major.
    pub data: Vec<f32>,
}

/// Below this element count, parallel matmul overhead outweighs the win.
const PAR_THRESHOLD: usize = 64 * 64;

impl Tensor {
    /// All-zeros tensor.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a flat row-major vector (length must match).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor { rows, cols, data }
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element at `(r, c)`.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Matrix product `self × other` (`[m,k] × [k,n] → [m,n]`).
    ///
    /// The inner loop is the cache-friendly `ikj` order; large products
    /// parallelise over output rows (disjoint writes, deterministic
    /// per-element reduction order).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; m * n];

        let row_job = |(i, out_row): (usize, &mut [f32])| {
            let a_row = &self.data[i * k..(i + 1) * k];
            for (p, &a) in a_row.iter().enumerate() {
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        };

        if m * n >= PAR_THRESHOLD {
            out.par_chunks_mut(n).enumerate().for_each(row_job);
        } else {
            out.chunks_mut(n).enumerate().for_each(row_job);
        }
        Tensor { rows: m, cols: n, data: out }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                *out.get_mut(c, r) = self.get(r, c);
            }
        }
        out
    }

    /// Elementwise `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise `self += alpha * other` (axpy).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scale every element.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Sum of column `c` over all rows (used for bias gradients).
    pub fn col_sum(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Max absolute difference to another tensor.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        // Force one product over and one under the threshold with the same
        // math: identity times X is X.
        let n = 80;
        let mut eye = Tensor::zeros(n, n);
        for i in 0..n {
            *eye.get_mut(i, i) = 1.0;
        }
        let x = Tensor::from_vec(n, n, (0..n * n).map(|i| (i % 97) as f32 * 0.1).collect());
        assert_eq!(eye.matmul(&x).data, x.data);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Tensor::from_vec(1, 3, vec![10., 10., 10.]);
        a.axpy(0.5, &b);
        assert_eq!(a.data, vec![6., 7., 8.]);
        a.scale(2.0);
        assert_eq!(a.data, vec![12., 14., 16.]);
    }

    #[test]
    fn col_sum_sums_rows() {
        let a = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(a.col_sum(), vec![4., 6.]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn serde_roundtrip_is_bit_exact() {
        // Awkward values on purpose: subnormal, negative zero, extremes.
        let t = Tensor::from_vec(
            2,
            3,
            vec![0.1, -0.0, f32::MIN_POSITIVE / 8.0, f32::MAX, -f32::MIN, 1.0e-7],
        );
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!((back.rows, back.cols), (t.rows, t.cols));
        for (a, b) in t.data.iter().zip(&back.data) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} round-tripped to {b}");
        }
    }

    #[test]
    fn norm_and_diff() {
        let a = Tensor::from_vec(1, 2, vec![3., 4.]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        let b = Tensor::from_vec(1, 2, vec![3., 4.5]);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-6);
    }
}
