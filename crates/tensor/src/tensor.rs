//! The dense row-major f32 matrix at the bottom of everything.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// Row-major 2-D f32 tensor. Rows are samples (the micro-batch dimension),
/// columns are features.
///
/// Serde round-trips are **bit-exact** for finite values: every `f32`
/// widens losslessly to `f64`, the JSON writer renders the shortest
/// round-trip form, and narrowing back recovers the original bits — the
/// property the checkpoint format (`hanayo-ckpt`) is built on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// `rows * cols` values, row-major.
    pub data: Vec<f32>,
}

/// Below this multiply-add count (`m * k * n`), parallel matmul overhead
/// outweighs the win: ~32k madds is a few microseconds of scalar work,
/// roughly the cost of one pooled dispatch.
pub const PAR_FLOP_THRESHOLD: usize = 32 * 1024;

/// Seed-era element-count gate (`m * n`), kept only inside the frozen
/// reference kernel so before/after benches reproduce the old dispatch.
const REFERENCE_PAR_THRESHOLD: usize = 64 * 64;

/// Column tile for the blocked gemm: four `b`-row segments plus the output
/// segment stay resident in L1 (5 × 512 × 4 B = 10 KiB).
const GEMM_COL_TILE: usize = 512;

static FORCE_REFERENCE_KERNELS: AtomicBool = AtomicBool::new(false);

/// Route every gemm through the frozen seed kernels
/// ([`Tensor::matmul_reference`] and transpose-materializing fused paths).
///
/// The fast kernels are bitwise identical to the reference, so flipping
/// this changes speed, never results. It exists so the bench harness can
/// measure honest before/after medians inside one process, and so tests
/// can A/B whole training runs across both kernel generations.
pub fn set_reference_kernels(on: bool) {
    FORCE_REFERENCE_KERNELS.store(on, Ordering::Relaxed);
}

/// True when [`set_reference_kernels`] has routed gemms to the seed path.
pub fn reference_kernels() -> bool {
    FORCE_REFERENCE_KERNELS.load(Ordering::Relaxed)
}

/// Parallel-dispatch decision for an `[m,k] × [k,n]` product: gate on work
/// (`m * k * n` multiply-adds), not output size (`m * n`). A
/// `[4,4096]×[4096,4]` product is 65,536 madds behind 16 outputs — worth
/// threads; `[128,1]×[1,128]` is 16,384 madds spread over 16,384 outputs —
/// not worth one dispatch. Work splits by output row, so a single-row
/// product never parallelizes.
pub fn matmul_parallelizes(m: usize, k: usize, n: usize) -> bool {
    m > 1 && m.saturating_mul(k).saturating_mul(n) >= PAR_FLOP_THRESHOLD
}

/// One output row of `a × b` in the canonical reduction order: every
/// element accumulates its `k` contributions with `p` strictly ascending.
/// The `k` loop is unrolled by 4 with *sequential* adds (a chain, not a
/// tree) and columns are tiled ([`GEMM_COL_TILE`]); both transforms
/// preserve the per-element f32 add chain, so the result is bitwise
/// identical to the naive `ikj` loop while cutting `out_row` load/store
/// traffic 4×.
fn gemm_row_blocked(a_row: &[f32], b: &[f32], out_row: &mut [f32]) {
    let k = a_row.len();
    let n = out_row.len();
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + GEMM_COL_TILE).min(n);
        let mut p = 0;
        while p + 4 <= k {
            let (a0, a1, a2, a3) = (a_row[p], a_row[p + 1], a_row[p + 2], a_row[p + 3]);
            let r0 = &b[p * n + j0..p * n + j1];
            let r1 = &b[(p + 1) * n + j0..(p + 1) * n + j1];
            let r2 = &b[(p + 2) * n + j0..(p + 2) * n + j1];
            let r3 = &b[(p + 3) * n + j0..(p + 3) * n + j1];
            let out_seg = &mut out_row[j0..j1];
            for ((((o, &v0), &v1), &v2), &v3) in out_seg.iter_mut().zip(r0).zip(r1).zip(r2).zip(r3)
            {
                let mut acc = *o;
                acc += a0 * v0;
                acc += a1 * v1;
                acc += a2 * v2;
                acc += a3 * v3;
                *o = acc;
            }
            p += 4;
        }
        while p < k {
            let a0 = a_row[p];
            let r0 = &b[p * n + j0..p * n + j1];
            for (o, &v0) in out_row[j0..j1].iter_mut().zip(r0) {
                *o += a0 * v0;
            }
            p += 1;
        }
        j0 = j1;
    }
}

/// Output row `pcol` of `aᵀ × b` without materializing the transpose:
/// coefficients walk column `pcol` of `a` while `b` rows stream — the
/// reduction index `i` (rows of `a`/`b`) ascends exactly as in
/// `a.transpose().matmul(b)`, so the result is bitwise identical.
fn gemm_at_b_row(a: &[f32], ka: usize, m: usize, pcol: usize, b: &[f32], out_row: &mut [f32]) {
    let n = out_row.len();
    let mut i = 0;
    while i + 4 <= m {
        let a0 = a[i * ka + pcol];
        let a1 = a[(i + 1) * ka + pcol];
        let a2 = a[(i + 2) * ka + pcol];
        let a3 = a[(i + 3) * ka + pcol];
        let r0 = &b[i * n..(i + 1) * n];
        let r1 = &b[(i + 1) * n..(i + 2) * n];
        let r2 = &b[(i + 2) * n..(i + 3) * n];
        let r3 = &b[(i + 3) * n..(i + 4) * n];
        for ((((o, &v0), &v1), &v2), &v3) in out_row.iter_mut().zip(r0).zip(r1).zip(r2).zip(r3) {
            let mut acc = *o;
            acc += a0 * v0;
            acc += a1 * v1;
            acc += a2 * v2;
            acc += a3 * v3;
            *o = acc;
        }
        i += 4;
    }
    while i < m {
        let a0 = a[i * ka + pcol];
        let r0 = &b[i * n..(i + 1) * n];
        for (o, &v0) in out_row.iter_mut().zip(r0) {
            *o += a0 * v0;
        }
        i += 1;
    }
}

impl Tensor {
    /// All-zeros tensor.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a flat row-major vector (length must match).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor { rows, cols, data }
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element at `(r, c)`.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Matrix product `self × other` (`[m,k] × [k,n] → [m,n]`).
    ///
    /// Cache-blocked `ikj` with a **fixed reduction order**: every output
    /// element accumulates its `k` terms in one sequential f32 chain with
    /// `p` ascending, so the result is bitwise identical to the scalar
    /// seed kernel ([`Tensor::matmul_reference`]) on every input — blocked,
    /// unrolled, serial and row-parallel dispatches all agree to the bit.
    /// Large products (by [`matmul_parallelizes`], a flops gate) split
    /// over output rows (disjoint writes).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        hanayo_metrics::count!("hanayo_gemm_dispatch_total", &[("kernel", "matmul")], 1);
        if reference_kernels() {
            return self.matmul_reference(other);
        }
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; m * n];

        let row_job = |(i, out_row): (usize, &mut [f32])| {
            gemm_row_blocked(&self.data[i * k..(i + 1) * k], &other.data, out_row);
        };

        if matmul_parallelizes(m, k, n) {
            out.par_chunks_mut(n).enumerate().for_each(row_job);
        } else {
            out.chunks_mut(n).enumerate().for_each(row_job);
        }
        Tensor { rows: m, cols: n, data: out }
    }

    /// Frozen seed gemm: naive `ikj` with the seed's element-count
    /// (`m * n`) parallel gate. Kept verbatim so property tests can pin
    /// the fast kernels bitwise against it and so the bench harness can
    /// measure honest before/after medians inside one binary.
    pub fn matmul_reference(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; m * n];

        let row_job = |(i, out_row): (usize, &mut [f32])| {
            let a_row = &self.data[i * k..(i + 1) * k];
            for (p, &a) in a_row.iter().enumerate() {
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        };

        if m * n >= REFERENCE_PAR_THRESHOLD {
            out.par_chunks_mut(n).enumerate().for_each(row_job);
        } else {
            out.chunks_mut(n).enumerate().for_each(row_job);
        }
        Tensor { rows: m, cols: n, data: out }
    }

    /// Fused `selfᵀ × other` (`[m,ka]ᵀ × [m,n] → [ka,n]`) without
    /// materializing the transpose. Bitwise identical to
    /// `self.transpose().matmul(other)`: per output element the reduction
    /// runs over rows `i` strictly ascending, exactly like the reference.
    pub fn matmul_at_b(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "matmul_at_b shape mismatch");
        hanayo_metrics::count!("hanayo_gemm_dispatch_total", &[("kernel", "at_b")], 1);
        if reference_kernels() {
            return self.transpose().matmul_reference(other);
        }
        let (m, ka, n) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; ka * n];

        let row_job = |(pcol, out_row): (usize, &mut [f32])| {
            gemm_at_b_row(&self.data, ka, m, pcol, &other.data, out_row);
        };

        if matmul_parallelizes(ka, m, n) {
            out.par_chunks_mut(n).enumerate().for_each(row_job);
        } else {
            out.chunks_mut(n).enumerate().for_each(row_job);
        }
        Tensor { rows: ka, cols: n, data: out }
    }

    /// `self × otherᵀ` (`[m,k] × [n,k]ᵀ → [m,n]`), bitwise identical to
    /// `self.matmul(&other.transpose())`.
    ///
    /// Measured surprise: a "fused" row-dot form (walking `other`'s rows in
    /// place) *loses* to transposing once and streaming the blocked kernel
    /// — each fused output is one serial dependent f32 chain, while the
    /// blocked kernel spreads four independent chains across a whole
    /// output-row tile. So this entry materializes `otherᵀ` internally and
    /// reuses [`gemm_row_blocked`]; the win over calling sites doing it by
    /// hand is one transpose per product instead of one per caller, and a
    /// single place to revisit the trade-off.
    pub fn matmul_a_bt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "matmul_a_bt shape mismatch");
        hanayo_metrics::count!("hanayo_gemm_dispatch_total", &[("kernel", "a_bt")], 1);
        if reference_kernels() {
            return self.matmul_reference(&other.transpose());
        }
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let bt = other.transpose();
        let mut out = vec![0.0f32; m * n];

        let row_job = |(i, out_row): (usize, &mut [f32])| {
            gemm_row_blocked(&self.data[i * k..(i + 1) * k], &bt.data, out_row);
        };

        if matmul_parallelizes(m, k, n) {
            out.par_chunks_mut(n).enumerate().for_each(row_job);
        } else {
            out.chunks_mut(n).enumerate().for_each(row_job);
        }
        Tensor { rows: m, cols: n, data: out }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                *out.get_mut(c, r) = self.get(r, c);
            }
        }
        out
    }

    /// Elementwise `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise `self += alpha * other` (axpy).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scale every element.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Sum of column `c` over all rows (used for bias gradients).
    pub fn col_sum(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Max absolute difference to another tensor.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    /// Dense pseudo-random tensor; every element nonzero so a changed
    /// reduction order shows up in the low bits (unlike the old
    /// identity-matrix test, where each output had exactly one term).
    fn dense(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut state = seed | 1;
        let data = (0..rows * cols)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
        assert_eq!((a.rows, a.cols), (b.rows, b.cols), "{what}: shape");
        for (i, (x, y)) in a.data.iter().zip(&b.data).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn parallel_gate_is_flops_not_output_size() {
        // [4,4096]×[4096,4]: 16 outputs but 65,536 madds — parallelize.
        assert!(matmul_parallelizes(4, 4096, 4));
        // [128,1]×[1,128]: 16,384 outputs but only 16,384 madds — serial.
        assert!(!matmul_parallelizes(128, 1, 128));
        // Work splits by output row: one row can never parallelize.
        assert!(!matmul_parallelizes(1, 4096, 4096));
    }

    #[test]
    fn blocked_kernel_matches_reference_bitwise() {
        // Shapes straddling both gates; k exercises the unroll tail (k%4≠0)
        // and the column tile boundary (n > GEMM_COL_TILE).
        for &(m, k, n) in &[(7, 13, 9), (4, 4096, 4), (128, 1, 128), (33, 65, 67), (3, 6, 600)] {
            let a = dense(m, k, 0x9E3779B9 + (m * k) as u64);
            let b = dense(k, n, 0x85EBCA6B + (k * n) as u64);
            assert_bits_eq(&a.matmul(&b), &a.matmul_reference(&b), "matmul [{m},{k}]x[{k},{n}]");
        }
    }

    #[test]
    fn fused_kernels_match_transpose_paths_bitwise() {
        for &(m, k, n) in &[(6, 11, 5), (4, 96, 33), (130, 7, 130), (5, 6, 600)] {
            let a = dense(m, k, 11 + m as u64);
            let b = dense(m, n, 17 + n as u64);
            assert_bits_eq(&a.matmul_at_b(&b), &a.transpose().matmul_reference(&b), "matmul_at_b");
            let c = dense(n, k, 23 + k as u64);
            assert_bits_eq(&a.matmul_a_bt(&c), &a.matmul_reference(&c.transpose()), "matmul_a_bt");
        }
    }

    #[test]
    fn reference_kernel_switch_routes_but_never_changes_bits() {
        let a = dense(9, 31, 41);
        let b = dense(31, 14, 43);
        let fast = a.matmul(&b);
        set_reference_kernels(true);
        let slow = a.matmul(&b);
        set_reference_kernels(false);
        assert_bits_eq(&fast, &slow, "reference switch");
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Tensor::from_vec(1, 3, vec![10., 10., 10.]);
        a.axpy(0.5, &b);
        assert_eq!(a.data, vec![6., 7., 8.]);
        a.scale(2.0);
        assert_eq!(a.data, vec![12., 14., 16.]);
    }

    #[test]
    fn col_sum_sums_rows() {
        let a = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(a.col_sum(), vec![4., 6.]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn serde_roundtrip_is_bit_exact() {
        // Awkward values on purpose: subnormal, negative zero, extremes.
        let t = Tensor::from_vec(
            2,
            3,
            vec![0.1, -0.0, f32::MIN_POSITIVE / 8.0, f32::MAX, -f32::MIN, 1.0e-7],
        );
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!((back.rows, back.cols), (t.rows, t.cols));
        for (a, b) in t.data.iter().zip(&back.data) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} round-tripped to {b}");
        }
    }

    #[test]
    fn norm_and_diff() {
        let a = Tensor::from_vec(1, 2, vec![3., 4.]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        let b = Tensor::from_vec(1, 2, vec![3., 4.5]);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-6);
    }
}
