//! Loss functions: value plus gradient w.r.t. the prediction, in one call
//! (the pipeline's last stage computes both at the turnaround).

use crate::tensor::Tensor;

/// Mean-squared error over all elements. Returns `(loss, dL/dpred)`.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!((pred.rows, pred.cols), (target.rows, target.cols));
    let n = pred.len() as f32;
    let mut grad = pred.clone();
    grad.axpy(-1.0, target);
    let loss = grad.data.iter().map(|v| v * v).sum::<f32>() / n;
    grad.scale(2.0 / n);
    (loss, grad)
}

/// Row-wise softmax cross-entropy against integer class labels.
/// Returns `(mean loss, dL/dlogits)`.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.rows, labels.len());
    let mut grad = Tensor::zeros(logits.rows, logits.cols);
    let mut loss = 0.0f64;
    let inv_rows = 1.0 / logits.rows as f32;
    for r in 0..logits.rows {
        let row = logits.row(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let label = labels[r];
        assert!(label < logits.cols, "label out of range");
        loss -= ((exps[label] / sum).ln()) as f64;
        for c in 0..logits.cols {
            let p = exps[c] / sum;
            *grad.get_mut(r, c) = (p - if c == label { 1.0 } else { 0.0 }) * inv_rows;
        }
    }
    ((loss as f32) * inv_rows, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_equal_tensors_is_zero() {
        let a = Tensor::from_vec(1, 3, vec![1., 2., 3.]);
        let (l, g) = mse(&a, &a);
        assert_eq!(l, 0.0);
        assert!(g.data.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn mse_gradient_points_at_target() {
        let pred = Tensor::from_vec(1, 2, vec![1.0, 0.0]);
        let target = Tensor::from_vec(1, 2, vec![0.0, 0.0]);
        let (l, g) = mse(&pred, &target);
        assert!((l - 0.5).abs() < 1e-6);
        assert!(g.data[0] > 0.0 && g.data[1] == 0.0);
    }

    #[test]
    fn mse_gradient_finite_difference() {
        let pred = Tensor::from_vec(1, 3, vec![0.3, -0.8, 1.2]);
        let target = Tensor::from_vec(1, 3, vec![0.0, 0.5, 1.0]);
        let (_, g) = mse(&pred, &target);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut p = pred.clone();
            p.data[i] += eps;
            let (lp, _) = mse(&p, &target);
            p.data[i] -= 2.0 * eps;
            let (lm, _) = mse(&p, &target);
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - g.data[i]).abs() < 1e-3, "i={i}");
        }
    }

    #[test]
    fn xent_prefers_correct_label() {
        let logits = Tensor::from_vec(1, 3, vec![2.0, 0.0, 0.0]);
        let (l_good, _) = softmax_cross_entropy(&logits, &[0]);
        let (l_bad, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(l_good < l_bad);
    }

    #[test]
    fn xent_gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(2, 4, vec![0.1, -0.2, 0.5, 1.0, 2.0, 0.0, -1.0, 0.3]);
        let (_, g) = softmax_cross_entropy(&logits, &[2, 0]);
        for r in 0..2 {
            let s: f32 = g.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn xent_gradient_finite_difference() {
        let logits = Tensor::from_vec(1, 3, vec![0.5, -0.1, 0.9]);
        let (_, g) = softmax_cross_entropy(&logits, &[1]);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut p = logits.clone();
            p.data[i] += eps;
            let (lp, _) = softmax_cross_entropy(&p, &[1]);
            p.data[i] -= 2.0 * eps;
            let (lm, _) = softmax_cross_entropy(&p, &[1]);
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - g.data[i]).abs() < 1e-3, "i={i} fd={fd} g={}", g.data[i]);
        }
    }
}
