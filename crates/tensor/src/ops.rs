//! Elementwise activations and normalisation, forward and backward.
//!
//! Backward passes are hand-derived; `tests/` cross-checks every one of
//! them against central finite differences.

use crate::tensor::Tensor;

/// Exact GELU: `x * Φ(x)` with `Φ` the standard normal CDF, implemented via
/// `erf`. Matches the non-tanh-approximation variant.
pub fn gelu(x: &Tensor) -> Tensor {
    let mut out = x.clone();
    for v in &mut out.data {
        *v = 0.5 * *v * (1.0 + erf(*v / std::f32::consts::SQRT_2));
    }
    out
}

/// d/dx GELU, given the *input* `x` and upstream `dy`.
pub fn gelu_backward(x: &Tensor, dy: &Tensor) -> Tensor {
    let mut out = dy.clone();
    for (g, &xv) in out.data.iter_mut().zip(&x.data) {
        let cdf = 0.5 * (1.0 + erf(xv / std::f32::consts::SQRT_2));
        let pdf = (-0.5 * xv * xv).exp() / (2.0 * std::f32::consts::PI).sqrt();
        *g *= cdf + xv * pdf;
    }
    out
}

/// ReLU.
pub fn relu(x: &Tensor) -> Tensor {
    let mut out = x.clone();
    for v in &mut out.data {
        *v = v.max(0.0);
    }
    out
}

/// d/dx ReLU given input `x` and upstream `dy`.
pub fn relu_backward(x: &Tensor, dy: &Tensor) -> Tensor {
    let mut out = dy.clone();
    for (g, &xv) in out.data.iter_mut().zip(&x.data) {
        if xv <= 0.0 {
            *g = 0.0;
        }
    }
    out
}

/// Row-wise layer normalisation (no affine parameters; the affine part
/// lives in [`crate::stage::Block::LayerNorm`]'s gain/bias).
/// Returns `(normalised, per-row mean, per-row inverse std)`.
pub fn layernorm(x: &Tensor, eps: f32) -> (Tensor, Vec<f32>, Vec<f32>) {
    let mut out = x.clone();
    let mut means = Vec::with_capacity(x.rows);
    let mut inv_stds = Vec::with_capacity(x.rows);
    let n = x.cols as f32;
    // Row-wise slice walk; arithmetic and order match the seed's indexed
    // loops element for element (bitwise-stable rewrite).
    for (out_row, row) in out.data.chunks_mut(x.cols).zip(x.data.chunks(x.cols)) {
        let mean = row.iter().sum::<f32>() / n;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let inv_std = 1.0 / (var + eps).sqrt();
        for (o, &v) in out_row.iter_mut().zip(row) {
            *o = (v - mean) * inv_std;
        }
        means.push(mean);
        inv_stds.push(inv_std);
    }
    (out, means, inv_stds)
}

/// Backward of row-wise layernorm. `xhat` is the normalised output,
/// `inv_std` the saved per-row inverse std, `dy` the upstream gradient
/// w.r.t. the normalised output.
pub fn layernorm_backward(xhat: &Tensor, inv_std: &[f32], dy: &Tensor) -> Tensor {
    let n = xhat.cols as f32;
    let mut dx = Tensor::zeros(xhat.rows, xhat.cols);
    for (r, dx_row) in dx.data.chunks_mut(xhat.cols).enumerate() {
        let dy_row = dy.row(r);
        let xh_row = xhat.row(r);
        let sum_dy: f32 = dy_row.iter().sum();
        let sum_dy_xhat: f32 = dy_row.iter().zip(xh_row).map(|(a, b)| a * b).sum();
        for ((o, &dyv), &xhv) in dx_row.iter_mut().zip(dy_row).zip(xh_row) {
            *o = (dyv - sum_dy / n - xhv * sum_dy_xhat / n) * inv_std[r];
        }
    }
    dx
}

/// `erf` via the Abramowitz–Stegun 7.1.26 polynomial (|error| < 1.5e-7,
/// plenty for f32).
pub fn erf(x: f32) -> f32 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061_405_4 * t - 1.453_152_1) * t) + 1.421_413_8) * t - 0.284_496_72) * t
            + 0.254_829_6)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(1, n, v)
    }

    #[test]
    fn erf_known_points() {
        assert!(erf(0.0).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427).abs() < 1e-3);
        assert!((erf(-1.0) + 0.8427).abs() < 1e-3);
        assert!((erf(3.0) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn gelu_matches_reference_points() {
        let y = gelu(&t(vec![0.0, 1.0, -1.0]));
        assert!(y.data[0].abs() < 1e-6);
        assert!((y.data[1] - 0.8413).abs() < 1e-3);
        assert!((y.data[2] + 0.1587).abs() < 1e-3);
    }

    #[test]
    fn relu_clamps() {
        let y = relu(&t(vec![-2.0, 0.0, 3.0]));
        assert_eq!(y.data, vec![0.0, 0.0, 3.0]);
        let dx = relu_backward(&t(vec![-2.0, 0.0, 3.0]), &t(vec![1.0, 1.0, 1.0]));
        assert_eq!(dx.data, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let x = Tensor::from_vec(2, 4, vec![1., 2., 3., 4., -1., 0., 1., 2.]);
        let (y, _, _) = layernorm(&x, 1e-5);
        for r in 0..2 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 4.0;
            let var: f32 = y.row(r).iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn gelu_gradient_finite_difference() {
        let x = t(vec![-1.5, -0.3, 0.0, 0.4, 2.0]);
        let dy = t(vec![1.0; 5]);
        let analytic = gelu_backward(&x, &dy);
        let eps = 1e-3f32;
        for i in 0..5 {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp.data[i] += eps;
            xm.data[i] -= eps;
            let fd = (gelu(&xp).data[i] - gelu(&xm).data[i]) / (2.0 * eps);
            assert!((fd - analytic.data[i]).abs() < 1e-2, "i={i} fd={fd} an={}", analytic.data[i]);
        }
    }

    #[test]
    fn layernorm_gradient_finite_difference() {
        let x = Tensor::from_vec(1, 4, vec![0.5, -1.0, 2.0, 0.1]);
        let dy = Tensor::from_vec(1, 4, vec![0.3, -0.2, 0.5, 1.0]);
        let (xhat, _, inv_std) = layernorm(&x, 1e-5);
        let analytic = layernorm_backward(&xhat, &inv_std, &dy);
        let eps = 1e-3f32;
        // Scalar objective: sum(dy * layernorm(x)).
        let obj = |xx: &Tensor| -> f32 {
            let (y, _, _) = layernorm(xx, 1e-5);
            y.data.iter().zip(&dy.data).map(|(a, b)| a * b).sum()
        };
        for i in 0..4 {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp.data[i] += eps;
            xm.data[i] -= eps;
            let fd = (obj(&xp) - obj(&xm)) / (2.0 * eps);
            assert!((fd - analytic.data[i]).abs() < 5e-3, "i={i} fd={fd} an={}", analytic.data[i]);
        }
    }
}
