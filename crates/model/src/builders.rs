//! Real micro-model builders for the threaded runtime: the same
//! layer-partitioning logic as the cost model, applied to actual
//! `hanayo_tensor::Stage` modules small enough to train on a CPU.

use crate::partition::{split_layers, CostTable, Recompute};
use hanayo_tensor::rng::seeded;
use hanayo_tensor::{Stage, Tensor};
use rand::rngs::StdRng;

/// A CPU-trainable stand-in for a transformer: `total_blocks` MLP blocks
/// (`LayerNorm → Linear → Gelu`) of width `width`.
#[derive(Debug, Clone)]
pub struct MicroModel {
    /// Feature width (plays the role of the hidden size).
    pub width: usize,
    /// Total MLP blocks (plays the role of the layer count).
    pub total_blocks: usize,
    /// RNG seed used for initialisation.
    pub seed: u64,
}

impl MicroModel {
    /// A small default: 8 blocks of width 16.
    pub fn small(seed: u64) -> MicroModel {
        MicroModel { width: 16, total_blocks: 8, seed }
    }

    /// Deterministic RNG for this model's weights.
    fn rng(&self) -> StdRng {
        seeded(self.seed)
    }

    /// Build the full model as one sequential stage (the reference for
    /// equivalence tests).
    pub fn build_monolith(&self) -> Stage {
        Stage::mlp(&mut self.rng(), self.width, self.total_blocks)
    }

    /// Build the model partitioned into `stages` pipeline stages with the
    /// same weights as [`MicroModel::build_monolith`] (identical RNG
    /// stream, split at block boundaries).
    ///
    /// Panics if `stages > total_blocks`: real modules cannot take
    /// fractional blocks (unlike the analytic cost model).
    pub fn build_stages(&self, stages: u32) -> Vec<Stage> {
        assert!(
            stages as usize <= self.total_blocks,
            "cannot split {} blocks into {} stages",
            self.total_blocks,
            stages
        );
        let split = split_layers(self.total_blocks as u32, stages);
        let mut rng = self.rng();
        split.iter().map(|&blocks| Stage::mlp(&mut rng, self.width, blocks as usize)).collect()
    }
}

/// Build a [`CostTable`] whose byte columns are *measured* from real
/// micro-model stages rather than derived from the analytic transformer
/// formulas.
///
/// The stash bytes are probed by running each stage's forward on a
/// zero tensor of the runtime's `rows × width` micro-batch shape: under
/// [`Recompute::None`] a stage stashes its full [`hanayo_tensor::StageStash`],
/// under [`Recompute::Full`] only the `rows × width × 4`-byte input
/// boundary tensor the worker keeps for the backward-time replay. Because
/// the threaded runtime accounts exactly those same quantities, a
/// simulation driven by this table predicts the runtime's per-device peak
/// stash bytes *exactly* — the invariant `tests/memory_truth.rs` pins.
///
/// FLOP columns are filled with positive per-stage proxies (so the table
/// passes [`crate::partition`]-level numerics validation and timing stays
/// meaningful-ish), scaled 2×/3× for the backward per the recompute mode.
/// When *measured* timings are wanted instead of proxies, feed this table
/// to `hanayo_trace::Calibration::cost_table` — calibration keeps these
/// probed byte columns and replaces the timing columns with per-stage
/// means fitted from a runtime trace, which is what lets the simulator
/// predict the real runtime's makespan (`tests/trace_truth.rs`).
///
/// Panics if any stage is empty: an identity stage has no measurable
/// cost and no real partition produces one.
pub fn micro_cost_table(
    stages: &[Stage],
    rows: usize,
    width: usize,
    recompute: Recompute,
) -> CostTable {
    assert!(!stages.is_empty(), "no stages to measure");
    let probe = Tensor::zeros(rows, width);
    let boundary = (rows * width * 4) as u64;
    let mut layers_per_stage = Vec::with_capacity(stages.len());
    let mut fwd_flops = Vec::with_capacity(stages.len());
    let mut bwd_flops = Vec::with_capacity(stages.len());
    let mut stash_bytes = Vec::with_capacity(stages.len());
    let mut weight_bytes = Vec::with_capacity(stages.len());
    let mut grad_bytes = Vec::with_capacity(stages.len());
    for stage in stages {
        assert!(!stage.blocks.is_empty(), "cannot measure an identity stage");
        let (_, stash) = stage.forward(&probe);
        let blocks = stage.blocks.len() as f64 / 3.0;
        // 2·rows·params is the exact matmul cost of the Linear blocks and a
        // fair proxy for the rest; what matters is that it is positive and
        // proportional to the stage.
        let fwd = 2.0 * rows as f64 * stage.param_count().max(1) as f64;
        layers_per_stage.push(blocks.max(1.0 / 3.0));
        fwd_flops.push(fwd);
        bwd_flops.push(match recompute {
            Recompute::None => 2.0 * fwd,
            Recompute::Full => 3.0 * fwd,
        });
        stash_bytes.push(match recompute {
            Recompute::None => stash.bytes() as u64,
            Recompute::Full => boundary,
        });
        // f32 parameters; the gradient buffer is the same shape.
        weight_bytes.push(4 * stage.param_count() as u64);
        grad_bytes.push(4 * stage.param_count() as u64);
    }
    CostTable {
        layers_per_stage,
        fwd_flops,
        bwd_flops,
        stash_bytes,
        weight_bytes,
        grad_bytes,
        msg_bytes: boundary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanayo_tensor::rng::uniform;

    #[test]
    fn partitioned_model_equals_monolith() {
        // Same seed → same weights → forward through the stage chain must
        // reproduce the monolith bit for bit.
        let m = MicroModel::small(11);
        let mono = m.build_monolith();
        let stages = m.build_stages(4);
        let x = uniform(&mut seeded(1), 3, m.width, 0.5);
        let (y_mono, _) = mono.forward(&x);
        let mut cur = x;
        for s in &stages {
            let (y, _) = s.forward(&cur);
            cur = y;
        }
        assert_eq!(cur, y_mono);
    }

    #[test]
    fn stage_block_counts_follow_split() {
        let m = MicroModel { width: 8, total_blocks: 10, seed: 0 };
        let stages = m.build_stages(4);
        let blocks: Vec<usize> = stages.iter().map(|s| s.blocks.len() / 3).collect();
        assert_eq!(blocks, vec![3, 3, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn rejects_more_stages_than_blocks() {
        MicroModel::small(0).build_stages(9);
    }

    #[test]
    fn param_totals_are_preserved() {
        let m = MicroModel::small(5);
        let mono = m.build_monolith();
        let total: usize = m.build_stages(8).iter().map(Stage::param_count).sum();
        assert_eq!(total, mono.param_count());
    }

    #[test]
    fn micro_cost_table_measures_real_stash_bytes() {
        let m = MicroModel { width: 8, total_blocks: 8, seed: 3 };
        let stages = m.build_stages(4);
        let plain = micro_cost_table(&stages, 2, 8, Recompute::None);
        let ckpt = micro_cost_table(&stages, 2, 8, Recompute::Full);
        let probe = Tensor::zeros(2, 8);
        for (s, stage) in stages.iter().enumerate() {
            let (_, stash) = stage.forward(&probe);
            assert_eq!(plain.stash_bytes[s], stash.bytes() as u64, "stage {s}");
            assert_eq!(ckpt.stash_bytes[s], 2 * 8 * 4, "stage {s} boundary");
            assert_eq!(plain.weight_bytes[s], 4 * stage.param_count() as u64);
        }
        // Checkpointing costs exactly one extra forward per backward.
        for s in 0..stages.len() {
            assert_eq!(plain.bwd_flops[s], 2.0 * plain.fwd_flops[s]);
            assert_eq!(ckpt.bwd_flops[s], 3.0 * ckpt.fwd_flops[s]);
            assert_eq!(plain.fwd_flops[s], ckpt.fwd_flops[s]);
        }
        assert_eq!(plain.msg_bytes, 2 * 8 * 4);
    }

    #[test]
    fn recompute_labels_are_stable() {
        assert_eq!(Recompute::None.label(), "none");
        assert_eq!(Recompute::Full.to_string(), "full");
        assert_eq!(Recompute::ALL, [Recompute::None, Recompute::Full]);
    }
}
