//! Real micro-model builders for the threaded runtime: the same
//! layer-partitioning logic as the cost model, applied to actual
//! `hanayo_tensor::Stage` modules small enough to train on a CPU.

use crate::partition::split_layers;
use hanayo_tensor::rng::seeded;
use hanayo_tensor::Stage;
use rand::rngs::StdRng;

/// A CPU-trainable stand-in for a transformer: `total_blocks` MLP blocks
/// (`LayerNorm → Linear → Gelu`) of width `width`.
#[derive(Debug, Clone)]
pub struct MicroModel {
    /// Feature width (plays the role of the hidden size).
    pub width: usize,
    /// Total MLP blocks (plays the role of the layer count).
    pub total_blocks: usize,
    /// RNG seed used for initialisation.
    pub seed: u64,
}

impl MicroModel {
    /// A small default: 8 blocks of width 16.
    pub fn small(seed: u64) -> MicroModel {
        MicroModel { width: 16, total_blocks: 8, seed }
    }

    /// Deterministic RNG for this model's weights.
    fn rng(&self) -> StdRng {
        seeded(self.seed)
    }

    /// Build the full model as one sequential stage (the reference for
    /// equivalence tests).
    pub fn build_monolith(&self) -> Stage {
        Stage::mlp(&mut self.rng(), self.width, self.total_blocks)
    }

    /// Build the model partitioned into `stages` pipeline stages with the
    /// same weights as [`MicroModel::build_monolith`] (identical RNG
    /// stream, split at block boundaries).
    ///
    /// Panics if `stages > total_blocks`: real modules cannot take
    /// fractional blocks (unlike the analytic cost model).
    pub fn build_stages(&self, stages: u32) -> Vec<Stage> {
        assert!(
            stages as usize <= self.total_blocks,
            "cannot split {} blocks into {} stages",
            self.total_blocks,
            stages
        );
        let split = split_layers(self.total_blocks as u32, stages);
        let mut rng = self.rng();
        split.iter().map(|&blocks| Stage::mlp(&mut rng, self.width, blocks as usize)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanayo_tensor::rng::uniform;

    #[test]
    fn partitioned_model_equals_monolith() {
        // Same seed → same weights → forward through the stage chain must
        // reproduce the monolith bit for bit.
        let m = MicroModel::small(11);
        let mono = m.build_monolith();
        let stages = m.build_stages(4);
        let x = uniform(&mut seeded(1), 3, m.width, 0.5);
        let (y_mono, _) = mono.forward(&x);
        let mut cur = x;
        for s in &stages {
            let (y, _) = s.forward(&cur);
            cur = y;
        }
        assert_eq!(cur, y_mono);
    }

    #[test]
    fn stage_block_counts_follow_split() {
        let m = MicroModel { width: 8, total_blocks: 10, seed: 0 };
        let stages = m.build_stages(4);
        let blocks: Vec<usize> = stages.iter().map(|s| s.blocks.len() / 3).collect();
        assert_eq!(blocks, vec![3, 3, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn rejects_more_stages_than_blocks() {
        MicroModel::small(0).build_stages(9);
    }

    #[test]
    fn param_totals_are_preserved() {
        let m = MicroModel::small(5);
        let mono = m.build_monolith();
        let total: usize = m.build_stages(8).iter().map(Stage::param_count).sum();
        assert_eq!(total, mono.param_count());
    }
}
