//! Training memory accounting: what one parameter really costs.

use crate::config::ModelConfig;

/// Default bytes per parameter under mixed-precision Adam: fp16 weight
/// (2) plus fp16 gradient (2) plus fp32 master weight (4) plus two fp32
/// moments (8), 16 in total — the standard ZeRO-paper accounting.
/// Override per model via [`ModelConfig::with_train_bytes_per_param`].
pub const TRAIN_BYTES_PER_PARAM: u64 = 16;

/// Bytes of the fp16 gradient buffer alone (what the data-parallel
/// all-reduce actually moves).
pub const GRAD_BYTES_PER_PARAM: u64 = 2;

/// Static training bytes for `layers` transformer layers (weights, grads
/// and optimizer state — everything except the activation stash).
pub fn weight_train_bytes(m: &ModelConfig, layers: f64) -> u64 {
    (layers * m.params_per_layer() as f64 * m.train_bytes_per_param as f64) as u64
}

/// Gradient-buffer bytes for `layers` transformer layers.
pub fn grad_bytes(m: &ModelConfig, layers: f64) -> u64 {
    (layers * m.params_per_layer() as f64 * GRAD_BYTES_PER_PARAM as f64) as u64
}

/// Static training bytes for the whole model.
pub fn total_train_bytes(m: &ModelConfig) -> u64 {
    weight_train_bytes(m, m.layers as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_full_model_is_80gb_class() {
        // ~5B params × 16 B ≈ 80 GB — why BERT-64L *must* be pipelined.
        let m = ModelConfig::bert64();
        let gb = total_train_bytes(&m) as f64 / 1e9;
        assert!(gb > 78.0 && gb < 84.0, "{gb}");
    }

    #[test]
    fn per_device_share_fits_a100_at_p8() {
        let m = ModelConfig::bert64();
        let per_dev = weight_train_bytes(&m, 64.0 / 8.0) as f64 / 1e9;
        assert!(per_dev > 9.0 && per_dev < 11.0, "{per_dev}");
    }

    #[test]
    fn fractional_layers_interpolate() {
        let m = ModelConfig::gpt128();
        let half = weight_train_bytes(&m, 0.5);
        let full = weight_train_bytes(&m, 1.0);
        assert!((2 * half) as i64 - full as i64 <= 1);
    }

    #[test]
    fn lighter_accounting_halves_the_bill() {
        let m = ModelConfig::bert64();
        let zero1 = m.clone().with_train_bytes_per_param(8);
        assert_eq!(weight_train_bytes(&zero1, 8.0) * 2, weight_train_bytes(&m, 8.0));
        // Gradient traffic is accounting-independent.
        assert_eq!(grad_bytes(&zero1, 8.0), grad_bytes(&m, 8.0));
    }
}
