//! The two model architectures of §5 plus the workload knobs.

use serde::{Deserialize, Serialize};

/// A transformer architecture, described by the quantities the cost model
/// needs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Display name.
    pub name: String,
    /// Number of transformer layers (`L`).
    pub layers: u32,
    /// Hidden dimension (`h`).
    pub hidden: u32,
    /// Attention heads (`a`).
    pub heads: u32,
    /// Sequence length (`s`). The paper does not state it; 512 is the
    /// BERT-pretraining standard and keeps the memory shapes consistent
    /// (see EXPERIMENTS.md).
    pub seq_len: u32,
    /// Training dtype width in bytes (2 = fp16 mixed precision).
    pub dtype_bytes: u32,
    /// Static training bytes per parameter. 16 = full mixed-precision Adam
    /// (fp16 weight+grad, fp32 master + two moments); 8 ≈ the same with
    /// ZeRO-1-style sharded optimizer states. Fig. 9 uses 8 — without it,
    /// consolidating half the BERT model per device (Chimera-wave at
    /// P = 4) does not fit a 32 GB V100 under *any* accounting, yet the
    /// paper ran exactly that on the Tencent cluster.
    pub train_bytes_per_param: u32,
}

impl ModelConfig {
    /// The paper's BERT-style model: "64 layers, 64 attention heads, and a
    /// hidden size of 2560".
    pub fn bert64() -> ModelConfig {
        ModelConfig {
            name: "Bert-64L".to_string(),
            layers: 64,
            hidden: 2560,
            heads: 64,
            seq_len: 512,
            dtype_bytes: 2,
            train_bytes_per_param: 16,
        }
    }

    /// Override the static training-state bytes per parameter.
    pub fn with_train_bytes_per_param(mut self, bytes: u32) -> ModelConfig {
        self.train_bytes_per_param = bytes;
        self
    }

    /// The paper's GPT-style model: "128 layers, 16 attention heads, and a
    /// hidden size of 1024".
    pub fn gpt128() -> ModelConfig {
        ModelConfig {
            name: "GPT-128L".to_string(),
            layers: 128,
            hidden: 1024,
            heads: 16,
            seq_len: 512,
            dtype_bytes: 2,
            train_bytes_per_param: 16,
        }
    }

    /// Parameters in one transformer layer: `12h² + 13h`
    /// (QKV + projection + two 4h MLP matrices + biases + norms).
    pub fn params_per_layer(&self) -> u64 {
        let h = self.hidden as u64;
        12 * h * h + 13 * h
    }

    /// Total model parameters.
    pub fn total_params(&self) -> u64 {
        self.params_per_layer() * self.layers as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert64_is_a_5b_model() {
        let m = ModelConfig::bert64();
        let p = m.total_params();
        assert!(p > 4_900_000_000 && p < 5_200_000_000, "{p}");
    }

    #[test]
    fn gpt128_is_a_1_6b_model() {
        let m = ModelConfig::gpt128();
        let p = m.total_params();
        assert!(p > 1_500_000_000 && p < 1_700_000_000, "{p}");
    }

    #[test]
    fn params_scale_quadratically_in_hidden() {
        let b = ModelConfig::bert64();
        let g = ModelConfig::gpt128();
        // 2560/1024 = 2.5; per-layer ratio ≈ 6.25
        let ratio = b.params_per_layer() as f64 / g.params_per_layer() as f64;
        assert!((ratio - 6.25).abs() < 0.05, "{ratio}");
    }
}
