//! Per-layer compute and activation costs, standard accounting.

use crate::config::ModelConfig;

/// Forward FLOPs for one transformer layer on a micro-batch of `b`
/// sequences: `24·b·s·h² + 4·b·s²·h` (matmul-dominated; the first term is
/// the four h×h-class projections plus the 8h² MLP, the second the
/// attention score/context products).
pub fn fwd_flops_per_layer(m: &ModelConfig, micro_batch: u32) -> f64 {
    let (b, s, h) = (micro_batch as f64, m.seq_len as f64, m.hidden as f64);
    24.0 * b * s * h * h + 4.0 * b * s * s * h
}

/// Backward FLOPs: the canonical 2× forward (`T_B = 2 T_F`, exactly the
/// ratio the paper's figures assume).
pub fn bwd_flops_per_layer(m: &ModelConfig, micro_batch: u32) -> f64 {
    2.0 * fwd_flops_per_layer(m, micro_batch)
}

/// Bytes of activation stash one layer keeps for backward, per micro-batch
/// of `b` sequences: `s·b·h·(34 + 5·a·s/h)` (fp16, no selective
/// recomputation — the paper benchmarks without activation checkpointing).
pub fn act_bytes_per_layer(m: &ModelConfig, micro_batch: u32) -> u64 {
    let (b, s, h, a) = (micro_batch as f64, m.seq_len as f64, m.hidden as f64, m.heads as f64);
    (s * b * h * (34.0 + 5.0 * a * s / h)) as u64
}

/// Bytes of the activation tensor flowing between two stages for one
/// micro-batch: `b·s·h·dtype`.
pub fn boundary_bytes(m: &ModelConfig, micro_batch: u32) -> u64 {
    (micro_batch * m.seq_len * m.hidden * m.dtype_bytes) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_layer_flops_magnitude() {
        // 24·1·512·2560² ≈ 80.5 GFLOP dominates the 2.7 GFLOP attention term.
        let m = ModelConfig::bert64();
        let f = fwd_flops_per_layer(&m, 1);
        assert!(f > 8.0e10 && f < 9.0e10, "{f}");
    }

    #[test]
    fn backward_is_twice_forward() {
        let m = ModelConfig::gpt128();
        assert_eq!(bwd_flops_per_layer(&m, 3), 2.0 * fwd_flops_per_layer(&m, 3));
    }

    #[test]
    fn costs_scale_linearly_in_microbatch() {
        let m = ModelConfig::bert64();
        assert_eq!(fwd_flops_per_layer(&m, 4), 4.0 * fwd_flops_per_layer(&m, 1));
        assert_eq!(act_bytes_per_layer(&m, 4), 4 * act_bytes_per_layer(&m, 1));
        assert_eq!(boundary_bytes(&m, 4), 4 * boundary_bytes(&m, 1));
    }

    #[test]
    fn bert_activation_stash_magnitude() {
        // 512·2560·(34 + 5·64·512/2560) = 512·2560·98 ≈ 128 MB per sequence.
        let m = ModelConfig::bert64();
        let a = act_bytes_per_layer(&m, 1);
        assert!(a > 120_000_000 && a < 140_000_000, "{a}");
    }

    #[test]
    fn boundary_message_is_mb_s_h_dtype() {
        let m = ModelConfig::bert64();
        assert_eq!(boundary_bytes(&m, 1), 512 * 2560 * 2);
    }

    #[test]
    fn gpt_layers_are_cheaper_than_bert_layers() {
        let b = ModelConfig::bert64();
        let g = ModelConfig::gpt128();
        assert!(fwd_flops_per_layer(&g, 1) < fwd_flops_per_layer(&b, 1));
        assert!(act_bytes_per_layer(&g, 1) < act_bytes_per_layer(&b, 1));
    }
}
