//! Layer→stage partitioning and the per-stage cost table the simulator
//! consumes.
//!
//! Stages get `L/S` layers each. When `S` does not divide `L` the remainder
//! spreads over the first stages (realistic imbalance). When `S > L` —
//! Hanayo with many waves on few layers — stages take *fractional* layers:
//! the paper notes waves can grow "as long as there are sufficient layers
//! within a single stage to divide", and real deployments split at
//! sub-layer granularity (e.g. attention/MLP halves); the cost model
//! handles that exactly, while the real runtime requires whole blocks.

use crate::config::ModelConfig;
use crate::costs;
use crate::memory;
use serde::{Deserialize, Serialize};

/// Per-stage costs of one pipeline configuration, in engine-neutral units
/// (FLOPs and bytes — the simulator divides by device speed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostTable {
    /// Layers per stage (possibly fractional).
    pub layers_per_stage: Vec<f64>,
    /// Forward FLOPs per stage per micro-batch.
    pub fwd_flops: Vec<f64>,
    /// Backward FLOPs per stage per micro-batch.
    pub bwd_flops: Vec<f64>,
    /// Activation-stash bytes per stage per micro-batch.
    pub stash_bytes: Vec<u64>,
    /// Static training bytes (weights+grads+optimizer) per stage.
    pub weight_bytes: Vec<u64>,
    /// fp16 gradient-buffer bytes per stage (the data-parallel all-reduce
    /// volume; independent of the optimizer-state accounting).
    pub grad_bytes: Vec<u64>,
    /// Bytes of one inter-stage activation (or gradient) message.
    pub msg_bytes: u64,
}

/// Activation-recomputation mode (§6's "memory saving techniques ...
/// can be combined" — checkpointing trades backward compute for stash).
///
/// This is not only an analytical knob: the threaded runtime executes it
/// (stashing just the stage-input boundary tensor and replaying the stage
/// forward inside the backward), and the simulator, tuner and unit memory
/// replay all account the mode-adjusted stash so the three memory models
/// stay mutually verifiable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Recompute {
    /// Stash every internal activation (the paper's benchmarked setting).
    None,
    /// Per-stage checkpointing: stash only the stage's input boundary and
    /// re-run the forward inside the backward (`T_B' = T_B + T_F`).
    Full,
}

impl Recompute {
    /// Every mode, in sweep order.
    pub const ALL: [Recompute; 2] = [Recompute::None, Recompute::Full];

    /// Stable lowercase name (`none` / `full`), used in JSON tables and
    /// snapshot file names.
    pub fn label(self) -> &'static str {
        match self {
            Recompute::None => "none",
            Recompute::Full => "full",
        }
    }
}

impl std::fmt::Display for Recompute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl CostTable {
    /// Build the cost table for `stages` pipeline stages and a micro-batch
    /// of `micro_batch` sequences.
    pub fn build(m: &ModelConfig, stages: u32, micro_batch: u32) -> CostTable {
        CostTable::build_with(m, stages, micro_batch, Recompute::None)
    }

    /// [`CostTable::build`] with an explicit recomputation mode.
    pub fn build_with(
        m: &ModelConfig,
        stages: u32,
        micro_batch: u32,
        recompute: Recompute,
    ) -> CostTable {
        let layers_per_stage = split_layers(m.layers, stages);
        let fwd1 = costs::fwd_flops_per_layer(m, micro_batch);
        let act1 = costs::act_bytes_per_layer(m, micro_batch) as f64;
        let fwd_flops: Vec<f64> = layers_per_stage.iter().map(|l| l * fwd1).collect();
        let bwd_flops: Vec<f64> = fwd_flops
            .iter()
            .map(|f| match recompute {
                Recompute::None => 2.0 * f,
                Recompute::Full => 3.0 * f,
            })
            .collect();
        let boundary = costs::boundary_bytes(m, micro_batch);
        let stash_bytes = layers_per_stage
            .iter()
            .map(|l| match recompute {
                Recompute::None => (l * act1) as u64,
                Recompute::Full => boundary,
            })
            .collect();
        let weight_bytes =
            layers_per_stage.iter().map(|&l| memory::weight_train_bytes(m, l)).collect();
        let grad_bytes = layers_per_stage.iter().map(|&l| memory::grad_bytes(m, l)).collect();
        CostTable {
            layers_per_stage,
            fwd_flops,
            bwd_flops,
            stash_bytes,
            weight_bytes,
            grad_bytes,
            msg_bytes: costs::boundary_bytes(m, micro_batch),
        }
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.fwd_flops.len()
    }

    /// Total forward FLOPs of one micro-batch across the pipeline.
    pub fn total_fwd_flops(&self) -> f64 {
        self.fwd_flops.iter().sum()
    }

    /// `T_F` in Table 1's sense for a given device speed: the forward time
    /// of `model/P` worth of layers.
    pub fn t_f(&self, devices: u32, flops_per_sec: f64) -> f64 {
        self.total_fwd_flops() / devices as f64 / flops_per_sec
    }
}

/// Split `layers` into `stages` parts: integral when possible, fractional
/// when `stages > layers`.
pub fn split_layers(layers: u32, stages: u32) -> Vec<f64> {
    assert!(stages > 0);
    if stages <= layers {
        let base = layers / stages;
        let extra = layers % stages;
        (0..stages).map(|s| if s < extra { (base + 1) as f64 } else { base as f64 }).collect()
    } else {
        vec![layers as f64 / stages as f64; stages as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_is_exact() {
        assert_eq!(split_layers(64, 8), vec![8.0; 8]);
    }

    #[test]
    fn remainder_spreads_over_leading_stages() {
        let s = split_layers(10, 4);
        assert_eq!(s, vec![3.0, 3.0, 2.0, 2.0]);
        assert_eq!(s.iter().sum::<f64>(), 10.0);
    }

    #[test]
    fn fractional_split_when_more_stages_than_layers() {
        let s = split_layers(4, 16);
        assert_eq!(s, vec![0.25; 16]);
        assert!((s.iter().sum::<f64>() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cost_table_conserves_totals() {
        let m = ModelConfig::bert64();
        let t8 = CostTable::build(&m, 8, 2);
        let t32 = CostTable::build(&m, 32, 2);
        assert!((t8.total_fwd_flops() - t32.total_fwd_flops()).abs() < 1e-3);
        let w8: u64 = t8.weight_bytes.iter().sum();
        let w32: u64 = t32.weight_bytes.iter().sum();
        assert!((w8 as i64 - w32 as i64).unsigned_abs() < 1000);
    }

    #[test]
    fn t_f_matches_hand_computation() {
        // BERT/8 devices at 140 TFLOP/s effective: 8 layers ≈ 0.665 TFLOP
        // forward → ~4.7 ms.
        let m = ModelConfig::bert64();
        let t = CostTable::build(&m, 8, 1);
        let tf = t.t_f(8, 140e12);
        assert!(tf > 3.5e-3 && tf < 6.0e-3, "{tf}");
    }

    #[test]
    fn msg_bytes_independent_of_stage_count() {
        let m = ModelConfig::gpt128();
        assert_eq!(CostTable::build(&m, 8, 2).msg_bytes, CostTable::build(&m, 64, 2).msg_bytes);
    }

    #[test]
    fn wave_stage_tables_shrink_per_stage_cost() {
        let m = ModelConfig::bert64();
        let straight = CostTable::build(&m, 8, 1);
        let wave2 = CostTable::build(&m, 32, 1); // P=8, W=2 → S=32
        assert!(wave2.fwd_flops[0] < straight.fwd_flops[0]);
        assert_eq!(wave2.stages(), 32);
    }

    #[test]
    fn recompute_trades_memory_for_backward_time() {
        let m = ModelConfig::bert64();
        let plain = CostTable::build_with(&m, 8, 2, Recompute::None);
        let ckpt = CostTable::build_with(&m, 8, 2, Recompute::Full);
        // Stash shrinks by orders of magnitude (boundary only)...
        assert!(ckpt.stash_bytes[0] * 20 < plain.stash_bytes[0]);
        // ...backward grows by exactly one forward.
        assert!((ckpt.bwd_flops[0] - plain.bwd_flops[0] - plain.fwd_flops[0]).abs() < 1.0);
        // Forward pass and weights are untouched.
        assert_eq!(ckpt.fwd_flops, plain.fwd_flops);
        assert_eq!(ckpt.weight_bytes, plain.weight_bytes);
    }

    #[test]
    fn recompute_stash_is_the_boundary_tensor() {
        let m = ModelConfig::gpt128();
        let ckpt = CostTable::build_with(&m, 16, 3, Recompute::Full);
        for &s in &ckpt.stash_bytes {
            assert_eq!(s, ckpt.msg_bytes);
        }
    }
}
