//! # hanayo-model
//!
//! Transformer workload models for the two architectures of the paper's
//! evaluation (§5): a BERT-style model (64 layers, hidden 2560, 64 heads)
//! and a GPT-style model (128 layers, hidden 1024, 16 heads).
//!
//! Two things live here:
//!
//! 1. **Analytic cost/memory models** ([`config`], [`costs`], [`memory`],
//!    [`partition`]) — per-layer FLOPs, activation-stash bytes, parameter
//!    bytes and message sizes, aggregated per pipeline stage into the
//!    [`partition::CostTable`] the discrete-event simulator consumes.
//!    Constants follow the standard accounting (Narayanan et al. 2021,
//!    Korthikanti et al. 2022): `24·b·s·h² + 4·b·s²·h` forward FLOPs per
//!    layer, backward = 2× forward, activation stash `s·b·h·(34 + 5as/h)`
//!    bytes in fp16, and 16 bytes per parameter for mixed-precision Adam
//!    (fp16 weight+grad, fp32 master+two moments).
//! 2. **Real micro-models** ([`builders`]) — small `hanayo_tensor::Stage`
//!    stacks with the same layer-partitioning logic, used by the threaded
//!    runtime to verify schedule *correctness* numerically.

pub mod builders;
pub mod config;
pub mod costs;
pub mod memory;
pub mod partition;

pub use config::ModelConfig;
pub use partition::{CostTable, Recompute};
