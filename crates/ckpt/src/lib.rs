//! # hanayo-ckpt
//!
//! Fault tolerance for the Hanayo reproduction: a versioned, bit-exact
//! checkpoint model, failure-injection plans, and the recovery cost model
//! the tuner uses to pick checkpoint intervals.
//!
//! At cluster scale failures are the steady state, not the exception. This
//! crate makes *resume-equals-uninterrupted* a pinned, testable property
//! rather than a hope, by exploiting the repo's bit-exact substrate:
//!
//! * [`checkpoint`] — the [`Checkpoint`] snapshot (per-stage weights,
//!   optimizer state, the seeded RNG stream position, iteration index and
//!   the frozen [`hanayo_core::action::Schedule`] it was produced under),
//!   with a schema-version + config-fingerprint guard and CRC-32 integrity
//!   checking. Serde round-trips are exact to the last f32 bit, so a run
//!   resumed from a checkpoint produces losses/weights identical to one
//!   that never stopped (`hanayo-runtime` pins this on every golden
//!   scheme).
//! * [`failure`] — [`FailurePlan`]: kill device `d` at iteration `i`, or
//!   drop a link. The runtime injects these through its existing
//!   `AbortFlag`/`WorkerError` machinery, so an injected crash exercises
//!   the same shutdown paths a real one would.
//! * [`recovery`] — the failure/recovery cost model: per-checkpoint stall
//!   from weight+optimizer bytes over the cluster's weakest link, rewind +
//!   restart cost, device MTBF (on
//!   [`hanayo_cluster::ClusterSpec::device_mtbf_s`]), and the goodput
//!   formula whose optimum is the Young–Daly interval
//!   ([`recovery::young_daly_interval_s`]).

pub mod checkpoint;
pub mod failure;
pub mod recovery;

pub use checkpoint::{
    config_fingerprint, fingerprint_parts, Checkpoint, CkptError, OptimizerState, RngCursor,
    SCHEMA_VERSION,
};
pub use failure::{CheckpointPolicy, FailurePlan};
pub use recovery::{RecoveryEval, RecoveryOptions};
