//! Failure injection plans and the checkpoint cadence policy.
//!
//! A [`FailurePlan`] describes one deterministic fault for a training run
//! to suffer; the runtime's workers consult it and fail *through the same
//! typed-error/abort machinery* a genuine invariant violation would use,
//! so injected failures exercise exactly the shutdown paths that matter.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One deterministic fault to inject into a run. Device indices are
/// global ranks: for a data-parallel run of `world` replicas of `P`
/// devices, device `r·P + d` is local rank `d` of replica `r`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailurePlan {
    /// Run to completion.
    #[default]
    None,
    /// Device `device` dies at the start of iteration `iteration`
    /// (0-based, global across resumes).
    KillDevice {
        /// Global device rank to kill.
        device: u32,
        /// Iteration at whose start the device fails.
        iteration: u32,
    },
    /// The directed link `src → dst` goes down from iteration `iteration`
    /// onward: the first send across it fails the sending worker.
    DropLink {
        /// Global rank of the sending endpoint.
        src: u32,
        /// Global rank of the receiving endpoint.
        dst: u32,
        /// First iteration at which the link is down.
        iteration: u32,
    },
}

impl FailurePlan {
    /// Is this the no-failure plan?
    pub fn is_none(&self) -> bool {
        matches!(self, FailurePlan::None)
    }
}

impl fmt::Display for FailurePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailurePlan::None => write!(f, "no injected failure"),
            FailurePlan::KillDevice { device, iteration } => {
                write!(f, "kill device {device} at iteration {iteration}")
            }
            FailurePlan::DropLink { src, dst, iteration } => {
                write!(f, "drop link {src} -> {dst} from iteration {iteration}")
            }
        }
    }
}

/// How often a run takes a durable checkpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Checkpoint every `every` iterations (at iteration boundaries
    /// `0, k, 2k, …`). `0` disables checkpointing.
    pub every: u32,
}

impl CheckpointPolicy {
    /// No checkpoints.
    pub const OFF: CheckpointPolicy = CheckpointPolicy { every: 0 };

    /// Checkpoint every `k` iterations.
    pub fn every(k: u32) -> CheckpointPolicy {
        CheckpointPolicy { every: k }
    }

    /// Does this policy ever checkpoint?
    pub fn is_enabled(&self) -> bool {
        self.every > 0
    }

    /// Is global iteration `i` a checkpoint boundary under this policy?
    pub fn is_boundary(&self, i: u32) -> bool {
        self.is_enabled() && i.is_multiple_of(self.every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_boundaries() {
        let p = CheckpointPolicy::every(3);
        assert!(p.is_enabled());
        assert!(p.is_boundary(0) && p.is_boundary(3) && p.is_boundary(6));
        assert!(!p.is_boundary(1) && !p.is_boundary(5));
        assert!(!CheckpointPolicy::OFF.is_enabled());
        assert!(!CheckpointPolicy::OFF.is_boundary(0));
    }

    #[test]
    fn plans_display_and_roundtrip() {
        let kill = FailurePlan::KillDevice { device: 3, iteration: 7 };
        assert_eq!(kill.to_string(), "kill device 3 at iteration 7");
        assert!(FailurePlan::None.is_none() && !kill.is_none());
        for plan in
            [FailurePlan::None, kill, FailurePlan::DropLink { src: 1, dst: 2, iteration: 4 }]
        {
            let back: FailurePlan =
                serde_json::from_str(&serde_json::to_string(&plan).unwrap()).unwrap();
            assert_eq!(back, plan);
        }
    }
}
