//! The failure/recovery cost model: what checkpointing costs, what a
//! failure wastes, and the goodput a plan actually delivers once both are
//! priced in.
//!
//! Model (first-order, the standard checkpoint/restart accounting):
//!
//! * A checkpoint drains the largest per-device training state (weights +
//!   optimizer) to durable storage over the cluster's **weakest link** —
//!   stall `C = latency + bytes/bandwidth` per checkpoint.
//! * With interval `W` seconds of useful work between checkpoints, the
//!   checkpoint overhead factor is `W / (W + C)`.
//! * Failures arrive at the fleet rate `1/M`, `M = device_mtbf / n`
//!   ([`cluster_mtbf_s`]). Each failure wastes the expected rewind `W/2`
//!   plus the restart cost `R` (state reload over the same link + a fixed
//!   job-restart latency), so the availability factor is
//!   `1 − (R + W/2)/M`.
//! * Efficiency `E(W) = W/(W+C) · (1 − (R + W/2)/M)`; goodput = ideal
//!   throughput × `E`.
//!
//! Maximising `E` gives the Young–Daly optimum
//! `W* = √(C² + 2CM·(1 − R/M)) − C` ([`young_daly_interval_s`]), which
//! reduces to the classic `√(2CM)` for `C, R ≪ M`. The tuner sweeps
//! discrete iteration intervals through [`evaluate`] and the optimum falls
//! out of the sweep; a test asserts it against the closed form.

use hanayo_cluster::Link;
use serde::{Deserialize, Serialize};

/// Knobs of the recovery model that are not derivable from the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryOptions {
    /// Fixed job-restart latency on top of the state reload: scheduler
    /// requeue, process launch, NCCL re-initialisation.
    pub restart_latency_s: f64,
    /// Override the cluster's per-device MTBF (useful for what-if sweeps);
    /// `None` uses `ClusterSpec::device_mtbf_s`.
    pub device_mtbf_s: Option<f64>,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions { restart_latency_s: 30.0, device_mtbf_s: None }
    }
}

/// One evaluated `(plan, checkpoint interval)` point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryEval {
    /// Checkpoint interval in iterations.
    pub interval_iterations: u32,
    /// The same interval in seconds of useful work (`k · t_iter`).
    pub interval_s: f64,
    /// Stall of one checkpoint drain, seconds.
    pub checkpoint_write_s: f64,
    /// Cost of one recovery (state reload + fixed restart latency).
    pub restart_s: f64,
    /// Fleet-level mean time between failures, seconds.
    pub cluster_mtbf_s: f64,
    /// `E(W)` — fraction of ideal throughput the run retains.
    pub efficiency: f64,
    /// Sequences per second after checkpoint overhead and expected
    /// failure waste.
    pub goodput_seq_per_s: f64,
}

/// Stall of draining `state_bytes` to durable storage over the weakest
/// link.
pub fn checkpoint_write_s(state_bytes: u64, weakest: Link) -> f64 {
    weakest.transfer_time(state_bytes)
}

/// Cost of one recovery: reload the state over the same link, plus the
/// fixed job-restart latency.
pub fn restart_s(state_bytes: u64, weakest: Link, restart_latency_s: f64) -> f64 {
    restart_latency_s + weakest.transfer_time(state_bytes)
}

/// Fleet MTBF of `devices` independent devices, each failing every
/// `device_mtbf_s` seconds on average.
pub fn cluster_mtbf_s(device_mtbf_s: f64, devices: u32) -> f64 {
    assert!(devices > 0, "a job runs on at least one device");
    device_mtbf_s / devices as f64
}

/// First-order checkpoint/restart efficiency `E(W)` (see module docs).
/// Clamped to `[0, 1]`: a regime where failures arrive faster than
/// recovery makes progress has zero goodput, not negative.
pub fn efficiency(interval_s: f64, ckpt_s: f64, restart_s: f64, mtbf_s: f64) -> f64 {
    assert!(interval_s > 0.0 && interval_s.is_finite(), "interval must be positive");
    assert!(ckpt_s >= 0.0 && restart_s >= 0.0 && mtbf_s > 0.0);
    let overhead = interval_s / (interval_s + ckpt_s);
    let availability = 1.0 - (restart_s + interval_s / 2.0) / mtbf_s;
    (overhead * availability).clamp(0.0, 1.0)
}

/// The closed-form optimum of [`efficiency`] in seconds of useful work
/// between checkpoints: `W* = √(C² + 2CM·(1 − R/M)) − C`. Returns
/// `f64::INFINITY` on a failure-free cluster (never checkpoint) and `0.0`
/// when recovery alone exceeds the MTBF (no interval helps).
pub fn young_daly_interval_s(ckpt_s: f64, mtbf_s: f64, restart_s: f64) -> f64 {
    if mtbf_s.is_infinite() {
        return f64::INFINITY;
    }
    let a = 1.0 - restart_s / mtbf_s;
    if a <= 0.0 {
        return 0.0;
    }
    (ckpt_s * ckpt_s + 2.0 * ckpt_s * mtbf_s * a).sqrt() - ckpt_s
}

/// Evaluate one `(plan, interval)` point: how much goodput survives once
/// the checkpoint stall and the expected failure waste are charged.
///
/// * `iteration_time_s`, `sequences_per_iteration` — the failure-free
///   plan performance (from the simulator).
/// * `state_bytes_per_device` — largest per-device weights+optimizer
///   payload (what one checkpoint must drain).
/// * `devices` — devices the job occupies (sets the fleet failure rate).
/// * `weakest` — the cluster's weakest link ([`hanayo_cluster::ClusterSpec::weakest_link`]).
/// * `device_mtbf_s` — per-device MTBF (overridable via `opts`).
#[allow(clippy::too_many_arguments)]
pub fn evaluate(
    iteration_time_s: f64,
    sequences_per_iteration: f64,
    state_bytes_per_device: u64,
    devices: u32,
    weakest: Link,
    device_mtbf_s: f64,
    interval_iterations: u32,
    opts: &RecoveryOptions,
) -> RecoveryEval {
    assert!(interval_iterations > 0, "a checkpoint interval is at least one iteration");
    let mtbf = cluster_mtbf_s(opts.device_mtbf_s.unwrap_or(device_mtbf_s), devices);
    let ckpt = checkpoint_write_s(state_bytes_per_device, weakest);
    let restart = restart_s(state_bytes_per_device, weakest, opts.restart_latency_s);
    let interval_s = interval_iterations as f64 * iteration_time_s;
    let eff = efficiency(interval_s, ckpt, restart, mtbf);
    RecoveryEval {
        interval_iterations,
        interval_s,
        checkpoint_write_s: ckpt,
        restart_s: restart,
        cluster_mtbf_s: mtbf,
        efficiency: eff,
        goodput_seq_per_s: sequences_per_iteration / iteration_time_s * eff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanayo_cluster::LinkClass;

    fn link() -> Link {
        Link::of(LinkClass::InfiniBandHdr)
    }

    #[test]
    fn write_and_restart_costs_ride_the_weakest_link() {
        let l = link();
        let bytes = 10_000_000_000;
        assert_eq!(checkpoint_write_s(bytes, l), l.transfer_time(bytes));
        assert_eq!(restart_s(bytes, l, 30.0), 30.0 + l.transfer_time(bytes));
        assert_eq!(cluster_mtbf_s(8000.0, 8), 1000.0);
    }

    #[test]
    fn efficiency_penalises_both_extremes() {
        // C = 2 s, R = 10 s, M = 2000 s. Checkpointing every 1 s pays the
        // stall; every 10000 s pays the rewind; the optimum sits between.
        let (c, r, m) = (2.0, 10.0, 2000.0);
        let sweet = efficiency(young_daly_interval_s(c, m, r), c, r, m);
        assert!(sweet > efficiency(1.0, c, r, m), "too-frequent should lose");
        assert!(sweet > efficiency(3000.0, c, r, m), "too-rare should lose");
        assert!(sweet > 0.9 && sweet < 1.0, "plausible efficiency: {sweet}");
    }

    #[test]
    fn young_daly_matches_numeric_argmax() {
        // Fine grid vs closed form: the argmax lands within one grid step.
        let (c, r, m) = (1.5, 20.0, 5000.0);
        let star = young_daly_interval_s(c, m, r);
        let step = 0.25;
        let (mut best_w, mut best_e) = (0.0, 0.0);
        let mut w = step;
        while w < 4.0 * star {
            let e = efficiency(w, c, r, m);
            if e > best_e {
                (best_w, best_e) = (w, e);
            }
            w += step;
        }
        assert!((best_w - star).abs() <= step, "grid argmax {best_w} vs closed form {star}");
        // And the classic √(2CM) approximation is close in this regime.
        assert!((star - (2.0 * c * m).sqrt()).abs() / star < 0.05);
    }

    #[test]
    fn failure_free_cluster_never_checkpoints() {
        assert_eq!(young_daly_interval_s(2.0, f64::INFINITY, 10.0), f64::INFINITY);
        // With infinite MTBF only the stall matters: efficiency is W/(W+C).
        let e = efficiency(10.0, 2.0, 5.0, f64::INFINITY);
        assert!((e - 10.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn hopeless_regimes_degrade_to_zero_not_negative() {
        // Restart alone exceeds the MTBF: no interval rescues the job.
        assert_eq!(young_daly_interval_s(1.0, 50.0, 60.0), 0.0);
        assert_eq!(efficiency(10.0, 1.0, 60.0, 50.0), 0.0);
    }

    #[test]
    fn evaluate_composes_the_pieces() {
        let e =
            evaluate(2.0, 8.0, 10_000_000_000, 8, link(), 1.0e6, 5, &RecoveryOptions::default());
        assert_eq!(e.interval_s, 10.0);
        assert_eq!(e.cluster_mtbf_s, 125_000.0);
        assert!(e.checkpoint_write_s > 0.0 && e.restart_s > e.checkpoint_write_s);
        assert!(e.efficiency > 0.0 && e.efficiency < 1.0);
        let ideal = 8.0 / 2.0;
        assert!((e.goodput_seq_per_s - ideal * e.efficiency).abs() < 1e-12);
        // Serde round-trip (the sweep/goodput tables serialize this).
        let back: RecoveryEval = serde_json::from_str(&serde_json::to_string(&e).unwrap()).unwrap();
        assert_eq!(back, e);
    }
}
