//! The versioned, serde-round-trip-exact checkpoint model.
//!
//! A [`Checkpoint`] captures everything a training run needs to resume
//! bit-identically: per-stage weights, optimizer state, the seeded RNG
//! stream position, the iteration index, and the frozen [`Schedule`] the
//! run was produced under. Three guards protect a restore:
//!
//! 1. **Schema version** — the on-disk envelope names its format version;
//!    an unknown version is a typed [`CkptError::SchemaVersion`], not a
//!    parse explosion.
//! 2. **Config fingerprint** — [`config_fingerprint`] hashes the schedule,
//!    replication width, learning rate bits, loss kind, recompute mode and
//!    stage shapes. Restoring under a different configuration is refused
//!    with [`CkptError::Fingerprint`] (resume-equivalence only holds when
//!    the program is the same program).
//! 3. **CRC-32 integrity** — the envelope carries a CRC over the canonical
//!    payload rendering; a flipped bit surfaces as [`CkptError::Integrity`].
//!
//! Exactness: every `f32` in the payload widens losslessly to `f64`, the
//! JSON writer emits the shortest round-trip rendering, and parsing
//! narrows back to the original bits — so "the weights in the file" and
//! "the weights in memory" are the same bits, which is what makes
//! resume-equals-uninterrupted provable rather than approximate.

use hanayo_core::action::Schedule;
use hanayo_model::Recompute;
use hanayo_tensor::optim::Adam;
use hanayo_tensor::Stage;
use hanayo_trace::Trace;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// Version of the on-disk checkpoint format. Bump when the payload shape
/// changes; loaders refuse anything they do not understand.
pub const SCHEMA_VERSION: u32 = 1;

/// Position of the pinned `hanayo_tensor::rng::seeded` stream a run draws
/// its synthetic data from: `draws` scalar draws have been consumed from
/// stream `seed`. Resume reconstructs the stream with
/// `hanayo_tensor::rng::seeded_at(seed, draws)` and continues generating
/// the *same* data the uninterrupted run would have seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngCursor {
    /// Seed of the data stream.
    pub seed: u64,
    /// Scalar draws consumed so far.
    pub draws: u64,
}

/// Optimizer state at the checkpoint boundary.
///
/// The threaded runtime trains with plain SGD (stateless beyond the
/// learning rate); Adam carries its step counter and both moment estimates
/// per stage. Either round-trips bit-exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OptimizerState {
    /// Stochastic gradient descent: the whole state is the learning rate.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// Adam: one full state (t, m, v and hyper-parameters) per stage.
    Adam {
        /// Per-stage optimizer states, aligned with `Checkpoint::stages`.
        states: Vec<Adam>,
    },
}

/// A complete, resumable snapshot of a training run at a flush boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// [`config_fingerprint`] of the configuration that produced this
    /// checkpoint; restores under a different configuration are refused.
    pub fingerprint: u64,
    /// Completed iterations — the checkpoint sits on the boundary between
    /// iteration `iteration - 1` and `iteration`.
    pub iteration: u32,
    /// Data-parallel replica count of the run (1 = single pipeline).
    pub world: u32,
    /// The frozen schedule the run executes (action lists + stage map).
    pub schedule: Schedule,
    /// Global stage modules at the boundary (replicas are bit-identical,
    /// so one copy suffices even for data-parallel runs).
    pub stages: Vec<Stage>,
    /// Optimizer state at the boundary.
    pub optimizer: OptimizerState,
    /// Mean loss of every completed iteration.
    pub losses: Vec<f32>,
    /// Per-device peak of the live activation-stash counter over the
    /// completed iterations (device order; `world · P` entries for
    /// data-parallel runs).
    pub peak_stash_bytes: Vec<u64>,
    /// Data-stream position for runs that draw synthetic data from the
    /// pinned seeded stream (`None` when the caller supplies data).
    pub rng: Option<RngCursor>,
    /// The cluster-level `ParallelPlan` the run was tuned under, as its
    /// canonical JSON rendering (opaque here — the plan type lives above
    /// this crate in `hanayo-sim`).
    pub plan_json: Option<String>,
    /// Execution trace of the completed iterations, when the run traced.
    /// Resumed runs append their spans shifted past this trace's makespan,
    /// so the merged timeline stays on one clock.
    pub trace: Option<Trace>,
}

/// A restore that cannot (or must not) proceed, with enough context to say
/// why.
#[derive(Debug, Clone, PartialEq)]
pub enum CkptError {
    /// The file's schema version is not one this build understands.
    SchemaVersion {
        /// Version found in the envelope.
        found: u32,
        /// Version this build writes and reads.
        supported: u32,
    },
    /// The checkpoint was produced under a different configuration.
    Fingerprint {
        /// Fingerprint of the configuration attempting the restore.
        expected: u64,
        /// Fingerprint stored in the checkpoint.
        found: u64,
    },
    /// The payload does not match its CRC — the file was corrupted.
    Integrity {
        /// CRC stored in the envelope.
        stored: u32,
        /// CRC computed over the parsed payload's canonical rendering.
        computed: u32,
    },
    /// The file is not parseable as a checkpoint at all.
    Parse(String),
    /// Rendering the checkpoint as JSON failed (unreachable for this
    /// schema; surfaced as a typed error rather than a panic).
    Serialize(String),
    /// Reading or writing the file failed.
    Io(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::SchemaVersion { found, supported } => {
                write!(
                    f,
                    "checkpoint schema v{found} not supported (this build reads v{supported})"
                )
            }
            CkptError::Fingerprint { expected, found } => write!(
                f,
                "checkpoint was produced under a different configuration \
                 (fingerprint {found:#018x}, expected {expected:#018x})"
            ),
            CkptError::Integrity { stored, computed } => write!(
                f,
                "checkpoint payload corrupt: CRC32 {computed:#010x} != stored {stored:#010x}"
            ),
            CkptError::Parse(msg) => write!(f, "checkpoint unparseable: {msg}"),
            CkptError::Serialize(msg) => write!(f, "checkpoint unserializable: {msg}"),
            CkptError::Io(msg) => write!(f, "checkpoint I/O failed: {msg}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// The on-disk wrapper: schema version + CRC around the payload.
#[derive(Serialize, Deserialize)]
struct Envelope {
    schema_version: u32,
    crc32: u32,
    checkpoint: Checkpoint,
}

/// Version/CRC probe parsed *before* the payload, so an unknown schema is
/// reported as such instead of as a missing-field parse error (extra
/// fields are ignored by the value-tree deserializer).
#[derive(Deserialize)]
struct Header {
    schema_version: u32,
}

impl Checkpoint {
    /// Canonical (compact) payload rendering — the bytes the CRC covers.
    /// Deterministic because every container this type uses renders in a
    /// fixed order. Serialization of this schema cannot fail in practice;
    /// the `Result` keeps the write path panic-free regardless.
    pub fn payload_json(&self) -> Result<String, CkptError> {
        serde_json::to_string(self).map_err(|e| CkptError::Serialize(e.to_string()))
    }

    /// Render the full envelope (pretty-printed; the CRC is computed over
    /// the canonical compact payload, so formatting never affects it).
    pub fn to_json(&self) -> Result<String, CkptError> {
        let envelope = Envelope {
            schema_version: SCHEMA_VERSION,
            crc32: crc32(self.payload_json()?.as_bytes()),
            checkpoint: self.clone(),
        };
        serde_json::to_string_pretty(&envelope).map_err(|e| CkptError::Serialize(e.to_string()))
    }

    /// Parse an envelope, guarding schema version and payload integrity.
    pub fn from_json(text: &str) -> Result<Checkpoint, CkptError> {
        let header: Header =
            serde_json::from_str(text).map_err(|e| CkptError::Parse(e.to_string()))?;
        if header.schema_version != SCHEMA_VERSION {
            return Err(CkptError::SchemaVersion {
                found: header.schema_version,
                supported: SCHEMA_VERSION,
            });
        }
        let envelope: Envelope =
            serde_json::from_str(text).map_err(|e| CkptError::Parse(e.to_string()))?;
        // Round-tripping is exact, so re-rendering the parsed payload
        // reproduces the canonical bytes the writer hashed; any value the
        // file lost or altered changes this CRC.
        let metrics_on = hanayo_metrics::enabled();
        let t0 = if metrics_on { hanayo_metrics::monotonic_nanos() } else { 0 };
        let computed = crc32(envelope.checkpoint.payload_json()?.as_bytes());
        if metrics_on {
            hanayo_metrics::observe(
                "hanayo_ckpt_crc_verify_ns",
                &[],
                hanayo_metrics::NANOS_BUCKETS,
                hanayo_metrics::monotonic_nanos().saturating_sub(t0),
            );
        }
        if computed != envelope.crc32 {
            if metrics_on {
                hanayo_metrics::counter_add("hanayo_ckpt_integrity_failures_total", &[], 1);
            }
            return Err(CkptError::Integrity { stored: envelope.crc32, computed });
        }
        Ok(envelope.checkpoint)
    }

    /// Write the envelope to a file.
    pub fn save(&self, path: &Path) -> Result<(), CkptError> {
        let json = self.to_json()?;
        std::fs::write(path, &json).map_err(|e| CkptError::Io(format!("{path:?}: {e}")))?;
        if hanayo_metrics::enabled() {
            hanayo_metrics::counter_add("hanayo_ckpt_writes_total", &[], 1);
            hanayo_metrics::counter_add("hanayo_ckpt_bytes_written_total", &[], json.len() as u64);
        }
        Ok(())
    }

    /// Read and fully validate a checkpoint file.
    pub fn load(path: &Path) -> Result<Checkpoint, CkptError> {
        let text =
            std::fs::read_to_string(path).map_err(|e| CkptError::Io(format!("{path:?}: {e}")))?;
        let ckpt = Checkpoint::from_json(&text)?;
        if hanayo_metrics::enabled() {
            hanayo_metrics::counter_add("hanayo_ckpt_resume_total", &[], 1);
        }
        Ok(ckpt)
    }

    /// Refuse a restore under a configuration whose fingerprint differs
    /// from the one this checkpoint was produced under.
    pub fn guard(&self, expected_fingerprint: u64) -> Result<(), CkptError> {
        if self.fingerprint != expected_fingerprint {
            return Err(CkptError::Fingerprint {
                expected: expected_fingerprint,
                found: self.fingerprint,
            });
        }
        Ok(())
    }

    /// Bytes of checkpointable model + optimizer state (f32 parameters
    /// plus Adam moments when present) — the payload a recovery model
    /// charges for draining to durable storage.
    pub fn state_bytes(&self) -> u64 {
        let params: usize = self.stages.iter().map(Stage::param_count).sum();
        let optim = match &self.optimizer {
            OptimizerState::Sgd { .. } => 0,
            OptimizerState::Adam { states } => states.iter().map(Adam::state_bytes).sum(),
        };
        (params * 4 + optim) as u64
    }
}

/// CRC-32 (IEEE 802.3, reflected) over a byte string. Bitwise — no table —
/// which is plenty for checkpoint-sized payloads.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a 64-bit over length-delimited parts (so part boundaries cannot
/// alias: `["ab","c"]` and `["a","bc"]` hash differently).
pub fn fingerprint_parts(parts: &[&[u8]]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for part in parts {
        eat(&(part.len() as u64).to_le_bytes());
        eat(part);
    }
    h
}

/// Fingerprint of a training configuration: the frozen schedule (canonical
/// JSON), replication width, learning-rate bits, loss kind label,
/// recompute mode and per-stage parameter shapes. Two configurations with
/// equal fingerprints run the same program on the same shapes — the
/// precondition for bitwise resume-equivalence.
pub fn config_fingerprint(
    schedule: &Schedule,
    world: u32,
    lr: f32,
    loss_label: &str,
    recompute: Recompute,
    stages: &[Stage],
) -> u64 {
    // A schedule is a plain tree of structs and vecs, so serialization
    // cannot fail; if it ever did, folding the (deterministic) error text
    // into the hash keeps the guard sound — writer and reader derive the
    // same token either way — instead of panicking mid-training.
    let schedule_json =
        serde_json::to_string(schedule).unwrap_or_else(|e| format!("unserializable schedule: {e}"));
    let shape: Vec<u8> = stages
        .iter()
        .flat_map(|s| {
            (s.param_count() as u64)
                .to_le_bytes()
                .into_iter()
                .chain((s.blocks.len() as u64).to_le_bytes())
        })
        .collect();
    fingerprint_parts(&[
        schedule_json.as_bytes(),
        &world.to_le_bytes(),
        &lr.to_bits().to_le_bytes(),
        loss_label.as_bytes(),
        recompute.label().as_bytes(),
        &shape,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanayo_core::config::{PipelineConfig, Scheme};
    use hanayo_core::schedule::build_schedule;
    use hanayo_tensor::rng::seeded;

    fn sample() -> Checkpoint {
        let cfg = PipelineConfig::new(2, 2, Scheme::Dapple).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let stages: Vec<Stage> = (0..2).map(|i| Stage::mlp(&mut seeded(40 + i), 6, 1)).collect();
        let fingerprint = config_fingerprint(&schedule, 1, 0.05, "mse", Recompute::None, &stages);
        Checkpoint {
            fingerprint,
            iteration: 3,
            world: 1,
            schedule,
            stages,
            optimizer: OptimizerState::Sgd { lr: 0.05 },
            losses: vec![0.75, 0.5, 0.1 + 0.2],
            peak_stash_bytes: vec![1234, 5678],
            rng: Some(RngCursor { seed: 7, draws: 96 }),
            plan_json: None,
            trace: None,
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let c = sample();
        let back = Checkpoint::from_json(&c.to_json().unwrap()).unwrap();
        assert_eq!(back, c);
        let bits = |c: &Checkpoint| {
            c.stages.iter().flat_map(|s| s.flat_params()).map(|v| v.to_bits()).collect::<Vec<_>>()
        };
        assert_eq!(bits(&back), bits(&c), "weights drifted through the file format");
        assert_eq!(
            back.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            c.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn save_load_roundtrip() {
        let c = sample();
        let path = std::env::temp_dir().join("hanayo_ckpt_test.json");
        c.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), c);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_schema_version_is_a_typed_error() {
        let json = sample().to_json().unwrap().replacen(
            "\"schema_version\": 1",
            "\"schema_version\": 99",
            1,
        );
        let err = Checkpoint::from_json(&json).unwrap_err();
        assert_eq!(err, CkptError::SchemaVersion { found: 99, supported: SCHEMA_VERSION });
        assert!(err.to_string().contains("v99"));
    }

    #[test]
    fn corrupted_payload_fails_the_crc() {
        let c = sample();
        let json = c.to_json().unwrap();
        // Flip one stored loss value; the envelope still parses but the
        // payload no longer matches its CRC.
        let needle = "0.75";
        assert!(json.contains(needle), "test needle missing from rendering");
        let tampered = json.replacen(needle, "0.76", 1);
        match Checkpoint::from_json(&tampered) {
            Err(CkptError::Integrity { stored, computed }) => assert_ne!(stored, computed),
            other => panic!("expected Integrity error, got {other:?}"),
        }
    }

    #[test]
    fn whitespace_changes_do_not_trip_the_crc() {
        // The CRC covers the canonical payload, not the file formatting.
        let c = sample();
        let json = c.to_json().unwrap().replace('\n', " ");
        assert_eq!(Checkpoint::from_json(&json).unwrap(), c);
    }

    #[test]
    fn fingerprint_guard_names_both_sides() {
        let c = sample();
        c.guard(c.fingerprint).unwrap();
        let err = c.guard(42).unwrap_err();
        assert_eq!(err, CkptError::Fingerprint { expected: 42, found: c.fingerprint });
        assert!(err.to_string().contains("different configuration"));
    }

    #[test]
    fn fingerprint_is_sensitive_to_every_axis() {
        let cfg = PipelineConfig::new(2, 2, Scheme::Dapple).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let other_schedule =
            build_schedule(&PipelineConfig::new(2, 2, Scheme::GPipe).unwrap()).unwrap();
        let stages: Vec<Stage> = (0..2).map(|i| Stage::mlp(&mut seeded(50 + i), 6, 1)).collect();
        let base = config_fingerprint(&schedule, 1, 0.05, "mse", Recompute::None, &stages);
        assert_ne!(
            base,
            config_fingerprint(&other_schedule, 1, 0.05, "mse", Recompute::None, &stages)
        );
        assert_ne!(base, config_fingerprint(&schedule, 2, 0.05, "mse", Recompute::None, &stages));
        assert_ne!(base, config_fingerprint(&schedule, 1, 0.06, "mse", Recompute::None, &stages));
        assert_ne!(base, config_fingerprint(&schedule, 1, 0.05, "xent", Recompute::None, &stages));
        assert_ne!(base, config_fingerprint(&schedule, 1, 0.05, "mse", Recompute::Full, &stages));
        let fatter: Vec<Stage> = (0..2).map(|i| Stage::mlp(&mut seeded(50 + i), 8, 1)).collect();
        assert_ne!(base, config_fingerprint(&schedule, 1, 0.05, "mse", Recompute::None, &fatter));
        // Same inputs, same fingerprint (it is a pure function).
        assert_eq!(base, config_fingerprint(&schedule, 1, 0.05, "mse", Recompute::None, &stages));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fingerprint_parts_are_length_delimited() {
        assert_ne!(fingerprint_parts(&[b"ab", b"c"]), fingerprint_parts(&[b"a", b"bc"]));
    }

    #[test]
    fn state_bytes_counts_params_and_moments() {
        let mut c = sample();
        let params: usize = c.stages.iter().map(Stage::param_count).sum();
        assert_eq!(c.state_bytes(), (params * 4) as u64);
        c.optimizer =
            OptimizerState::Adam { states: c.stages.iter().map(|s| Adam::new(s, 0.01)).collect() };
        assert_eq!(c.state_bytes(), (params * 4 + params * 8) as u64);
    }
}
