//! # hanayo-sim
//!
//! A discrete-event simulator that executes a frozen
//! [`hanayo_core::action::Schedule`] against a
//! [`hanayo_cluster::ClusterSpec`] and a [`hanayo_model::CostTable`].
//!
//! The engine models exactly the mechanisms the paper's §4 runtime exploits:
//!
//! * **Serial compute, concurrent NIC** — a device computes one stage at a
//!   time while transfers progress in the background.
//! * **Rendezvous transfers** — a message starts moving when the sender has
//!   posted the send *and* the receiver has posted the receive; the §4.2
//!   prefetching optimisation exists precisely to post receives early, and
//!   the simulator reproduces its benefit (toggle
//!   [`engine::SimOptions::prefetch`] to measure it).
//! * **Link contention** — transfers serialise per directed link;
//!   inter-node transfers serialise per node pair (the shared HCA).
//! * **Batched cross-communication** — `BatchedComm` posts all member ops
//!   atomically and blocks until every member receive has arrived, the
//!   NCCL `batch_isend_irecv` semantics that create the paper's fourth
//!   bubble type.
//! * **Memory tracking** — weights are static per device; activation
//!   stashes grow at forward completion and shrink at backward completion;
//!   the peak is compared against device capacity for OOM verdicts.
//!
//! [`plan`] layers data parallelism on top: `D` pipeline groups, a ring
//! all-reduce of fp16 gradients at the flush, and the Chimera-wave
//! re-interpretation (2×DP of 1-wave pipelines) used throughout the
//! paper's evaluation.

pub mod cache;
pub mod engine;
pub mod plan;
pub mod reference;
pub mod report;
pub mod search;
pub mod tuner;

pub use cache::SweepCaches;
pub use engine::{
    compile_schedule, reference_engine, set_reference_engine, simulate, simulate_traced,
    try_simulate, try_simulate_compiled, try_simulate_traced, validate_numerics, CompiledSchedule,
    NumericsError, SimError, SimOptions,
};
pub use plan::{evaluate_plan, Method, ParallelPlan, PlanResult};
pub use reference::simulate_reference;
pub use report::SimReport;
pub use search::{search_schedule, ScheduleSearchOptions, SearchedSchedule};
pub use tuner::{
    tune, tune_serial, tune_serial_with, tune_with, Candidate, Rejection, TuneContext, TuneError,
    TuneOptions, TuneProgress, Tuning,
};
