//! Cross-candidate (and, since the planning service, cross-*request*)
//! artifact caches for tuner sweeps.
//!
//! [`SweepCaches`] memoizes every pure artifact a sweep derives from its
//! candidates: built schedules, cost tables, static memory replays,
//! engine lowerings, deadlock verdicts and pipeline-group simulation
//! reports. Each cache is keyed by the *complete* set of inputs its
//! artifact is a pure function of, so a hit returns byte-for-byte what
//! the miss path would have computed and worker interleaving (which
//! thread populates an entry first) cannot perturb a ranking.
//!
//! Two properties were added when the caches started outliving a single
//! sweep inside a resident `hanayo-serve` process:
//!
//! * **Explicit poison recovery.** A panicking writer used to degrade a
//!   cache to rebuild-on-every-probe (`lock().ok()` fallbacks); now the
//!   lock is recovered explicitly — every cached value is a pure function
//!   of its key and every write is a single `insert`, so the state behind
//!   a poisoned lock is never torn — and the recovery is counted once per
//!   cache in `hanayo_tuner_cache_poisonings_total`.
//! * **Bounded size.** [`SweepCaches::bounded`] caps each cache at a
//!   fixed entry count with FIFO eviction (counted in
//!   `hanayo_tuner_cache_evictions_total`), so a resident process cannot
//!   grow without limit. Artifact ids (`content`/`report` ids) come from
//!   monotonic counters, never from map sizes, so an evicted entry's id
//!   is never reissued and a stale memo entry can never alias a fresh
//!   artifact.

use crate::engine::{compile_schedule, CompiledSchedule, SimOptions};
use crate::report::SimReport;
use hanayo_core::action::Schedule;
use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::schedule::build_schedule;
use hanayo_model::{CostTable, ModelConfig, Recompute};
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// One registry increment per cache probe, disabled-path cost a single
/// relaxed load. Hit/miss totals are deterministic under serial sweeps;
/// parallel sweeps may split them differently between hit and miss
/// (whichever thread populates first), which is why the golden
/// exposition pins the serial path.
fn record_cache(cache: &'static str, hit: bool) {
    if hanayo_metrics::enabled() {
        let name =
            if hit { "hanayo_tuner_cache_hits_total" } else { "hanayo_tuner_cache_misses_total" };
        hanayo_metrics::counter_add(name, &[("cache", cache)], 1);
    }
}

fn record_eviction(cache: &'static str, n: u64) {
    if n > 0 && hanayo_metrics::enabled() {
        hanayo_metrics::counter_add("hanayo_tuner_cache_evictions_total", &[("cache", cache)], n);
    }
}

/// A mutex-protected map with first-writer-wins inserts, FIFO eviction at
/// a fixed capacity, and explicit poison recovery.
pub(crate) struct BoundedMap<K, V> {
    label: &'static str,
    cap: usize,
    poisoned: AtomicBool,
    inner: Mutex<Inner<K, V>>,
}

struct Inner<K, V> {
    map: HashMap<K, V>,
    /// Insertion order, for FIFO eviction. Only keys actually inserted
    /// are pushed, so the queue length tracks the map exactly.
    order: VecDeque<K>,
}

impl<K: Eq + Hash + Clone, V: Clone> BoundedMap<K, V> {
    pub(crate) fn new(label: &'static str, cap: usize) -> BoundedMap<K, V> {
        BoundedMap {
            label,
            cap: cap.max(1),
            poisoned: AtomicBool::new(false),
            inner: Mutex::new(Inner { map: HashMap::new(), order: VecDeque::new() }),
        }
    }

    /// Acquire the lock, recovering explicitly from poisoning. Recovery
    /// is sound here because every value is a pure function of its key
    /// and every write path is a single non-tearing `insert`: the worst
    /// a panicked writer leaves behind is a missing entry, which the
    /// next miss rebuilds. The first recovery per map is counted.
    fn lock(&self) -> MutexGuard<'_, Inner<K, V>> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                if !self.poisoned.swap(true, Ordering::SeqCst) && hanayo_metrics::enabled() {
                    hanayo_metrics::counter_add(
                        "hanayo_tuner_cache_poisonings_total",
                        &[("cache", self.label)],
                        1,
                    );
                }
                poisoned.into_inner()
            }
        }
    }

    pub(crate) fn get(&self, key: &K) -> Option<V> {
        self.lock().map.get(key).cloned()
    }

    /// Insert unless present; either way return the entry the map holds
    /// afterwards (first writer wins, so concurrent inserters agree).
    /// Evicts oldest-inserted entries once the capacity is reached.
    pub(crate) fn insert_if_absent(&self, key: K, value: V) -> V {
        let mut inner = self.lock();
        if let Some(hit) = inner.map.get(&key) {
            return hit.clone();
        }
        let mut evicted = 0u64;
        while inner.map.len() >= self.cap {
            match inner.order.pop_front() {
                Some(old) => {
                    inner.map.remove(&old);
                    evicted += 1;
                }
                None => break,
            }
        }
        record_eviction(self.label, evicted);
        inner.map.insert(key.clone(), value.clone());
        inner.order.push_back(key);
        value
    }

    /// Like [`BoundedMap::insert_if_absent`], but the value is only built
    /// on a genuine miss — and the build runs under the lock, so exactly
    /// one caller pays for it.
    pub(crate) fn get_or_insert_with(&self, key: K, build: impl FnOnce() -> V) -> V {
        let mut inner = self.lock();
        if let Some(hit) = inner.map.get(&key) {
            return hit.clone();
        }
        let value = build();
        let mut evicted = 0u64;
        while inner.map.len() >= self.cap {
            match inner.order.pop_front() {
                Some(old) => {
                    inner.map.remove(&old);
                    evicted += 1;
                }
                None => break,
            }
        }
        record_eviction(self.label, evicted);
        inner.map.insert(key.clone(), value.clone());
        inner.order.push_back(key);
        value
    }

    /// First match of `f` over the current entries (iteration order is
    /// unspecified; callers only use this for content-id adoption, where
    /// any matching entry is equally correct).
    pub(crate) fn scan<R>(&self, mut f: impl FnMut(&K, &V) -> Option<R>) -> Option<R> {
        let inner = self.lock();
        inner.map.iter().find_map(|(k, v)| f(k, v))
    }

    pub(crate) fn len(&self) -> usize {
        self.lock().map.len()
    }
}

/// Cache key of a built schedule: the only inputs schedule lowering takes.
pub(crate) type SchedKey = (Scheme, u32, u32);
/// Cache key of a cost table (the model is fixed per sweep):
/// `(stages, micro_batch_size, recompute)`.
pub(crate) type CostKey = (u32, u32, Recompute);
/// Hashable image of everything a group simulation's *report* can depend
/// on beyond `(schedule, cost, sub-cluster)`: the prefetch switch, the
/// *content* of the prefetch windows (not the lookahead parameters that
/// produced them — distinct lookaheads whose §4.2 scans saturate to the
/// same windows drive the engine identically, and with prefetching off the
/// windows are never read at all, so the id is pinned to 0), the
/// all-reduce overlap via its bit pattern, and the trace switch (kept out
/// of caution even though traced reports are pinned bit-identical).
pub(crate) type ReportKey = (bool, u32, u64, bool);

pub(crate) fn report_key(sim: &SimOptions, content_id: u32) -> ReportKey {
    let windows = if sim.prefetch { content_id } else { 0 };
    (sim.prefetch, windows, sim.allreduce_overlap.to_bits(), sim.trace)
}

/// A cached engine lowering plus its content id (see
/// [`SweepCaches::compiled_for`]).
pub(crate) type CompiledEntry = (Arc<CompiledSchedule>, u32);

/// Pipeline-group [`SimReport`]s memoised across a sweep (or, when the
/// caches are shared by a resident service, across many sweeps of the
/// same `(model, cluster)` pair).
///
/// Keys are `(artifact id, first device)`: [`SweepCaches::report_id`]
/// assigns each distinct `(schedule, cost table, sim options)` triple a
/// unique id (ids are never reused, even across evictions), and the first
/// device plus the schedule's width pin the contiguous sub-cluster. A
/// report is a pure function of those inputs, so a memo hit returns the
/// byte-identical report the simulation would have produced.
pub(crate) type GroupReportMemo = BoundedMap<(u64, usize), SimReport>;

/// Cross-candidate artifact caches for one sweep
/// ([`crate::tuner::TuneOptions::batched`]) — or, handed to
/// [`crate::tuner::tune_with`] through a
/// [`crate::tuner::TuneContext`], for every sweep of one `(model,
/// cluster)` pair a resident service ever evaluates.
///
/// The wide sweep's axes (sim-option ablations, recompute modes,
/// micro-batch merges) multiply a handful of distinct pipeline shapes into
/// hundreds of candidates; per candidate, the seed path re-built the
/// schedule, the cost table, the static memory replay, the engine lowering
/// and — for every data-parallel clone of a shape — the group simulation
/// itself. Every cached value is a pure function of its cache key, so a
/// hit returns byte-for-byte what the miss path would have computed.
///
/// **Sharing contract:** the cache keys assume one model and one cluster.
/// Callers sharing a `SweepCaches` across requests must key the *handle*
/// by the `(model, cluster)` configuration — `hanayo-serve` does this
/// with the FNV config fingerprint from `hanayo-ckpt`.
pub struct SweepCaches {
    /// Built schedules.
    pub(crate) schedules: BoundedMap<SchedKey, Arc<Schedule>>,
    /// Cost tables.
    pub(crate) costs: BoundedMap<CostKey, Arc<CostTable>>,
    /// Static per-device memory replays (group-local peaks).
    pub(crate) peaks: BoundedMap<(SchedKey, CostKey), Arc<Vec<u64>>>,
    /// Memoized deadlock verdicts, keyed by the schedule's shape — the
    /// only inputs schedule lowering takes, so the verdict is a pure
    /// function of the key.
    pub(crate) deadlocks: BoundedMap<SchedKey, bool>,
    /// Engine lowerings, additionally keyed by the two lookahead
    /// parameters [`compile_schedule`] bakes in. The `u32` is the
    /// lowering's *content id*: lookahead variants of the same schedule
    /// whose prefetch scans saturated to identical windows
    /// ([`CompiledSchedule::same_lowering`]) share one id, which is what
    /// lets their simulations collapse into a single [`GroupReportMemo`]
    /// entry.
    pub(crate) compiled: BoundedMap<(SchedKey, usize, usize), CompiledEntry>,
    /// Collision-free ids for `(schedule, cost, report inputs)` triples;
    /// [`GroupReportMemo`] entries are keyed on them.
    pub(crate) report_ids: BoundedMap<(SchedKey, CostKey, ReportKey), u64>,
    /// Pipeline-group reports, shared with the plan evaluator.
    pub(crate) reports: GroupReportMemo,
    /// Monotonic id sources: ids survive evictions unreused, so a stale
    /// memo entry can never alias a fresh artifact.
    next_content_id: AtomicU32,
    next_report_id: AtomicU64,
}

impl Default for SweepCaches {
    /// Unbounded (one-shot sweep) caches: a single sweep's working set is
    /// bounded by its candidate space, so no eviction is needed and the
    /// hit/miss split stays a pure function of the candidate order.
    fn default() -> SweepCaches {
        SweepCaches::bounded(usize::MAX)
    }
}

impl SweepCaches {
    /// Caches capped at `per_cache_entries` entries each, FIFO-evicted —
    /// the resident-service configuration.
    pub fn bounded(per_cache_entries: usize) -> SweepCaches {
        let cap = per_cache_entries;
        SweepCaches {
            schedules: BoundedMap::new("schedules", cap),
            costs: BoundedMap::new("costs", cap),
            peaks: BoundedMap::new("peaks", cap),
            deadlocks: BoundedMap::new("deadlocks", cap),
            compiled: BoundedMap::new("compiled", cap),
            report_ids: BoundedMap::new("report_ids", cap),
            reports: BoundedMap::new("reports", cap),
            next_content_id: AtomicU32::new(0),
            next_report_id: AtomicU64::new(0),
        }
    }

    /// Total entries currently held across every cache — the resident
    /// service exports this as a gauge.
    pub fn entries(&self) -> usize {
        self.schedules.len()
            + self.costs.len()
            + self.peaks.len()
            + self.deadlocks.len()
            + self.compiled.len()
            + self.report_ids.len()
            + self.reports.len()
    }

    pub(crate) fn schedule_for(
        &self,
        key: SchedKey,
        cfg: &PipelineConfig,
    ) -> Option<Arc<Schedule>> {
        if let Some(hit) = self.schedules.get(&key) {
            record_cache("schedules", true);
            return Some(hit);
        }
        record_cache("schedules", false);
        let built = Arc::new(build_schedule(cfg).ok()?);
        Some(self.schedules.insert_if_absent(key, built))
    }

    pub(crate) fn cost_for(&self, key: CostKey, model: &ModelConfig) -> Arc<CostTable> {
        if let Some(hit) = self.costs.get(&key) {
            record_cache("costs", true);
            return hit;
        }
        record_cache("costs", false);
        let (stages, micro_batch_size, recompute) = key;
        let built = Arc::new(CostTable::build_with(model, stages, micro_batch_size, recompute));
        self.costs.insert_if_absent(key, built)
    }

    pub(crate) fn peaks_for(
        &self,
        key: (SchedKey, CostKey),
        schedule: &Schedule,
        cost: &CostTable,
    ) -> Arc<Vec<u64>> {
        if let Some(hit) = self.peaks.get(&key) {
            record_cache("peaks", true);
            return hit;
        }
        record_cache("peaks", false);
        let built = Arc::new(hanayo_analyze::static_peak_mem(schedule, cost));
        self.peaks.insert_if_absent(key, built)
    }

    /// The memoized deadlock verdict for a schedule shape, computing it
    /// at most once per cache lifetime.
    pub(crate) fn deadlock_free(&self, key: SchedKey, schedule: &Schedule) -> bool {
        if let Some(hit) = self.deadlocks.get(&key) {
            return hit;
        }
        let verdict = hanayo_analyze::check_deadlock_free(schedule).is_ok();
        self.deadlocks.insert_if_absent(key, verdict)
    }

    /// The lowering for `(key, lookaheads)` plus its content id. A fresh
    /// lowering is first compared against the other lookahead variants of
    /// the *same* schedule: if the scans saturated to identical windows it
    /// adopts their content id (ids are scoped per [`SchedKey`] by every
    /// consumer, so ids from different schedules may coincide freely).
    pub(crate) fn compiled_for(
        &self,
        key: SchedKey,
        schedule: &Schedule,
        sim: &SimOptions,
    ) -> (Arc<CompiledSchedule>, u32) {
        let full = (key, sim.recv_lookahead, sim.lookahead_window);
        if let Some(hit) = self.compiled.get(&full) {
            record_cache("compiled", true);
            return hit;
        }
        record_cache("compiled", false);
        let built = Arc::new(compile_schedule(schedule, sim));
        let content = self
            .compiled
            .scan(|(k, _, _), (other, id)| {
                (*k == key && other.same_lowering(&built)).then_some(*id)
            })
            .unwrap_or_else(|| self.next_content_id.fetch_add(1, Ordering::Relaxed));
        self.compiled.insert_if_absent(full, (built, content))
    }

    /// The [`GroupReportMemo`] id for this artifact triple: first caller
    /// allocates, later callers agree. Ids come from a monotonic counter
    /// assigned under the map lock, so distinct triples can never share a
    /// memo slot — not even after an eviction.
    pub(crate) fn report_id(
        &self,
        schedule_key: SchedKey,
        cost_key: CostKey,
        sim: &SimOptions,
        content_id: u32,
    ) -> Option<u64> {
        let key = (schedule_key, cost_key, report_key(sim, content_id));
        Some(
            self.report_ids
                .get_or_insert_with(key, || self.next_report_id.fetch_add(1, Ordering::Relaxed)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_if_absent_is_first_writer_wins() {
        let m: BoundedMap<u32, u32> = BoundedMap::new("test", 8);
        assert_eq!(m.insert_if_absent(1, 10), 10);
        assert_eq!(m.insert_if_absent(1, 20), 10);
        assert_eq!(m.get(&1), Some(10));
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let m: BoundedMap<u32, u32> = BoundedMap::new("test", 2);
        m.insert_if_absent(1, 1);
        m.insert_if_absent(2, 2);
        m.insert_if_absent(3, 3);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&1), None, "oldest entry must be the one evicted");
        assert_eq!(m.get(&2), Some(2));
        assert_eq!(m.get(&3), Some(3));
    }

    #[test]
    fn eviction_increments_the_metrics_counter() {
        hanayo_metrics::reset();
        hanayo_metrics::set_enabled(true);
        let m: BoundedMap<u32, u32> = BoundedMap::new("evict_probe", 1);
        m.insert_if_absent(1, 1);
        m.insert_if_absent(2, 2);
        let snap = hanayo_metrics::snapshot();
        let evictions = snap
            .series
            .iter()
            .find(|s| {
                s.name == "hanayo_tuner_cache_evictions_total"
                    && s.labels.iter().any(|(k, v)| k == "cache" && v == "evict_probe")
            })
            .map(|s| s.value.clone());
        hanayo_metrics::set_enabled(false);
        hanayo_metrics::reset();
        assert!(evictions.is_some(), "eviction must be counted");
    }

    #[test]
    fn poisoned_lock_recovers_and_keeps_serving() {
        let m: Arc<BoundedMap<u32, u32>> = Arc::new(BoundedMap::new("poison_probe", 8));
        m.insert_if_absent(1, 10);
        let m2 = m.clone();
        // Poison the mutex by panicking while holding it.
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            std::panic::panic_any("poison");
        })
        .join();
        // Recovery: existing entries survive, new inserts work.
        assert_eq!(m.get(&1), Some(10));
        assert_eq!(m.insert_if_absent(2, 20), 20);
        assert_eq!(m.get(&2), Some(20));
    }

    #[test]
    fn report_ids_are_never_reused_across_evictions() {
        let c = SweepCaches::bounded(1);
        let sim = SimOptions::default();
        let k1 = (Scheme::GPipe, 4, 4);
        let k2 = (Scheme::Dapple, 4, 4);
        let cost = (4u32, 1u32, Recompute::None);
        let a = c.report_id(k1, cost, &sim, 0);
        let b = c.report_id(k2, cost, &sim, 0); // evicts k1's id entry
        let a2 = c.report_id(k1, cost, &sim, 0); // re-allocated, must be fresh
        assert_ne!(a, b);
        assert_ne!(a2, a, "an evicted id must not be reissued");
        assert_ne!(a2, b);
    }

    #[test]
    fn bounded_caches_report_their_size() {
        let c = SweepCaches::bounded(4);
        assert_eq!(c.entries(), 0);
        let table = CostTable::build(&ModelConfig::bert64(), 4, 1);
        c.costs.insert_if_absent((4, 1, Recompute::None), Arc::new(table));
        assert_eq!(c.entries(), 1);
    }
}
