//! Schedule-space search scored by the compiled simulator.
//!
//! `hanayo-core`'s [`local_search`] is generic over a scoring closure;
//! this module supplies the closure the rest of the workspace cares
//! about: lower the candidate table to an executable [`Schedule`] and run
//! the compiled fast path via [`try_simulate`], so one illegal candidate
//! becomes a skipped move, never a panic. [`search_schedule`] is the
//! full pipeline: simulate the seven named schemes at `(P, B)`, greedily
//! seed the table from the best of them, hill-climb, and report the
//! searched schedule beside its baselines.

use crate::engine::{try_simulate, SimError, SimOptions};
use hanayo_cluster::ClusterSpec;
use hanayo_core::chain::ComputeSchedule;
use hanayo_core::comm;
use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::schedule::search::{local_search, SearchError, SearchOptions, SearchStats};
use hanayo_core::schedule::table::{check_table, ScheduleTable};
use hanayo_core::schedule::{build_compute_schedule, ScheduleError};
use hanayo_model::{CostTable, ModelConfig, Recompute};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Knobs of a simulator-scored schedule search; a thin, serializable
/// wrapper over the core [`SearchOptions`] (no stash cap — memory verdicts
/// come from the simulator itself).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleSearchOptions {
    /// RNG seed; results are a pure function of it.
    pub seed: u64,
    /// Maximum improvement rounds.
    pub max_rounds: usize,
    /// Candidate moves sampled per round.
    pub moves_per_round: usize,
    /// Stop after this many consecutive rounds without improvement.
    pub patience: usize,
}

impl Default for ScheduleSearchOptions {
    fn default() -> Self {
        let core = SearchOptions::default();
        ScheduleSearchOptions {
            seed: core.seed,
            max_rounds: core.max_rounds,
            moves_per_round: core.moves_per_round,
            patience: core.patience,
        }
    }
}

impl ScheduleSearchOptions {
    fn to_core(self) -> SearchOptions {
        SearchOptions {
            seed: self.seed,
            max_rounds: self.max_rounds,
            moves_per_round: self.moves_per_round,
            patience: self.patience,
            ..SearchOptions::default()
        }
    }
}

/// One named scheme's simulated result at the searched `(P, B)` shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineRow {
    /// The scheme.
    pub scheme: Scheme,
    /// Its figure label (`G`, `D`, `H-2`, ...).
    pub label: String,
    /// Simulated end-to-end iteration time in seconds.
    pub iteration_time_s: f64,
}

/// The outcome of a schedule search: the winning table plus the named
/// baselines it was measured against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchedSchedule {
    /// Pipeline width.
    pub devices: u32,
    /// Micro-batches per iteration.
    pub micro_batches: u32,
    /// Sequences per micro-batch (cost-table input).
    pub micro_batch_size: u32,
    /// Activation recomputation mode of the cost model.
    pub recompute: Recompute,
    /// Every named scheme that was feasible at this shape, simulated.
    pub baselines: Vec<BaselineRow>,
    /// The scheme the search was seeded from (the best baseline).
    pub seed_scheme: Scheme,
    /// The best named iteration time (the bar to beat).
    pub baseline_iteration_time_s: f64,
    /// The searched schedule's iteration time.
    pub iteration_time_s: f64,
    /// `(baseline - searched) / baseline`, in percent.
    pub improvement_pct: f64,
    /// Search effort actually spent.
    pub stats: SearchStats,
    /// The winning table (passes the validity checker by construction).
    pub table: ScheduleTable,
}

/// Why a schedule search could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleSearchError {
    /// No named scheme was feasible (generated + simulated) at `(P, B)`.
    NoFeasibleScheme {
        /// Requested pipeline width.
        devices: u32,
        /// Requested micro-batch count.
        micro_batches: u32,
    },
    /// Seeding failed in the core search layer.
    Seed(SearchError),
    /// The winning baseline failed to re-generate (a bug guard).
    Schedule(ScheduleError),
    /// The final table failed to re-simulate (a bug guard).
    Sim(SimError),
}

impl fmt::Display for ScheduleSearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleSearchError::NoFeasibleScheme { devices, micro_batches } => {
                write!(f, "no named scheme is feasible at P={devices} B={micro_batches}")
            }
            ScheduleSearchError::Seed(e) => write!(f, "search seeding failed: {e}"),
            ScheduleSearchError::Schedule(e) => write!(f, "schedule generation failed: {e}"),
            ScheduleSearchError::Sim(e) => write!(f, "simulation rejected: {e}"),
        }
    }
}

impl std::error::Error for ScheduleSearchError {}

/// The seven named schemes, in deterministic tie-break order.
pub fn named_schemes() -> [Scheme; 7] {
    [
        Scheme::Hanayo { waves: 2 },
        Scheme::Hanayo { waves: 1 },
        Scheme::Chimera,
        Scheme::Dapple,
        Scheme::Interleaved { chunks: 2 },
        Scheme::GPipe,
        Scheme::AsyncPipeDream,
    ]
}

fn simulate_order(
    cs: &ComputeSchedule,
    cost: &CostTable,
    cluster: &ClusterSpec,
    opts: SimOptions,
) -> Result<f64, SimError> {
    let schedule = comm::lower(cs);
    try_simulate(&schedule, cost, cluster, opts).map(|r| r.iteration_time)
}

/// Search the schedule space at `(P, B)` on `cluster` (which must have
/// exactly `P` devices): simulate every feasible named scheme, seed a
/// [`ScheduleTable`] from the best one, and hill-climb with the compiled
/// simulator as the cost model. Deterministic in `(inputs, opts.seed)`.
#[allow(clippy::too_many_arguments)] // the full (model, cluster, shape, cost, sim, search) input
pub fn search_schedule(
    model: &ModelConfig,
    cluster: &ClusterSpec,
    devices: u32,
    micro_batches: u32,
    micro_batch_size: u32,
    recompute: Recompute,
    sim: SimOptions,
    opts: &ScheduleSearchOptions,
) -> Result<SearchedSchedule, ScheduleSearchError> {
    // Baselines: every named scheme that generates and simulates at this
    // shape. Cost tables are per-scheme (stage counts differ).
    let mut baselines = Vec::new();
    let mut best: Option<(Scheme, ComputeSchedule, CostTable, f64)> = None;
    for scheme in named_schemes() {
        let Ok(cfg) = PipelineConfig::new(devices, micro_batches, scheme) else { continue };
        let Ok(cs) = build_compute_schedule(&cfg) else { continue };
        let cost = CostTable::build_with(model, cfg.stages(), micro_batch_size, recompute);
        let Ok(time) = simulate_order(&cs, &cost, cluster, sim) else { continue };
        baselines.push(BaselineRow { scheme, label: scheme.label(), iteration_time_s: time });
        // Strict < keeps the earlier scheme on ties: deterministic.
        if best.as_ref().is_none_or(|(_, _, _, t)| time < *t) {
            best = Some((scheme, cs, cost, time));
        }
    }
    let Some((seed_scheme, seed_cs, cost, baseline_time)) = best else {
        return Err(ScheduleSearchError::NoFeasibleScheme { devices, micro_batches });
    };
    baselines.sort_by(|a, b| a.iteration_time_s.total_cmp(&b.iteration_time_s));

    let seed_table = ScheduleTable::from_compute(&seed_cs);
    let (table, stats) = local_search(&seed_table, &opts.to_core(), |t| {
        // Lower once and statically screen for deadlock before paying for
        // a simulation. Tables that pass the validity checker can never
        // deadlock (strict chain order admits a synchronous execution
        // witness), so this is a soundness guard for the pre-pass wiring,
        // not a hot filter.
        let schedule = comm::lower(&t.to_compute());
        if hanayo_analyze::check_deadlock_free(&schedule).is_err() {
            return None;
        }
        try_simulate(&schedule, &cost, cluster, sim).ok().map(|r| r.iteration_time)
    })
    .map_err(ScheduleSearchError::Seed)?;

    debug_assert!(check_table(&table).is_ok());
    let iteration_time_s = stats.final_score;
    Ok(SearchedSchedule {
        devices,
        micro_batches,
        micro_batch_size,
        recompute,
        baselines,
        seed_scheme,
        baseline_iteration_time_s: baseline_time,
        iteration_time_s,
        improvement_pct: 100.0 * (baseline_time - iteration_time_s) / baseline_time,
        stats,
        table,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanayo_cluster::topology::{fc_full_nvlink, pc_partial_nvlink};

    fn opts_small() -> ScheduleSearchOptions {
        ScheduleSearchOptions { max_rounds: 8, moves_per_round: 12, ..Default::default() }
    }

    #[test]
    fn search_reports_consistent_fields() {
        let cluster = fc_full_nvlink(4);
        let model = ModelConfig::bert64();
        let r = search_schedule(
            &model,
            &cluster,
            4,
            4,
            1,
            Recompute::None,
            SimOptions::default(),
            &opts_small(),
        )
        .unwrap();
        assert!(!r.baselines.is_empty());
        assert!(r.iteration_time_s <= r.baseline_iteration_time_s);
        assert!(r.baselines.iter().any(|b| b.scheme == r.seed_scheme));
        check_table(&r.table).unwrap();
        // The reported time re-simulates exactly.
        let again = simulate_order(
            &r.table.to_compute(),
            &CostTable::build_with(&model, r.table.config.stages(), 1, Recompute::None),
            &cluster,
            SimOptions::default(),
        )
        .unwrap();
        assert_eq!(again, r.iteration_time_s);
    }

    #[test]
    fn search_is_deterministic() {
        let cluster = pc_partial_nvlink(4);
        let model = ModelConfig::bert64();
        let run = || {
            search_schedule(
                &model,
                &cluster,
                4,
                6,
                1,
                Recompute::None,
                SimOptions::default(),
                &opts_small(),
            )
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn infeasible_shape_is_a_typed_error() {
        // Cluster width ≠ P: every baseline fails to simulate.
        let cluster = fc_full_nvlink(4);
        let err = search_schedule(
            &ModelConfig::bert64(),
            &cluster,
            8,
            8,
            1,
            Recompute::None,
            SimOptions::default(),
            &opts_small(),
        )
        .unwrap_err();
        assert_eq!(err, ScheduleSearchError::NoFeasibleScheme { devices: 8, micro_batches: 8 });
    }
}
