//! The discrete-event executor.
//!
//! Devices interpret their action lists exactly like the paper's runtime
//! workers: compute ops run serially on the device, sends are posted
//! without blocking, receives block until the message arrives (unless
//! prefetching posted them early enough for the transfer to complete in
//! the background), and batched cross-communication blocks until every
//! member receive lands.
//!
//! A transfer is *rendezvous*: it starts only when both sides have posted
//! their halves, then occupies its link for `bytes/bandwidth` (FIFO per
//! directed link; inter-node transfers additionally serialise per node
//! pair, modelling the shared HCA) and arrives after an extra wire
//! latency.
//!
//! ## The fast path
//!
//! This engine is the hot loop of the auto-tuner's strategy sweep, so the
//! per-event bookkeeping avoids hashing entirely. A schedule is first
//! *compiled*: every `(mb, stage, payload)` message tag becomes a dense
//! integer, every action becomes a fixed-size opcode with pre-resolved tag
//! keys, and the §4.2 prefetch scanner's receive-group windows are
//! extracted once per `(schedule, options)` pair instead of being rescanned
//! at every compute start. Rendezvous state (`send/recv posted`,
//! `scheduled`, `arrived`) then lives in flat vectors indexed by
//! `device · ntags + tag`, and link FIFO cursors in dense per-pair tables.
//! [`crate::reference::simulate_reference`] keeps the seed `HashMap`
//! implementation; the two must produce bit-identical reports (the
//! cross-engine tests and the `engine_fastpath` benches enforce this).

use crate::report::{SimReport, SimSpan};
use hanayo_cluster::ClusterSpec;
use hanayo_core::action::{Action, CommDir, MsgTag, Payload, Schedule};
use hanayo_core::ids::StageId;
use hanayo_model::CostTable;
use hanayo_trace::{Trace, TraceEvent, TraceKind};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

static FORCE_REFERENCE_ENGINE: AtomicBool = AtomicBool::new(false);

/// Route [`try_simulate`] / [`simulate`] through the seed engine
/// ([`crate::reference::simulate_reference`]) instead of the compiled fast
/// path. Reports are bit-identical either way (the cross-engine suite pins
/// this), so the switch changes wall-clock only. The `bench` harness flips
/// it to measure honest before/after sweep medians inside one process —
/// the simulator-side mirror of the tensor crate's
/// `set_reference_kernels` switch for gemms. Traced runs and
/// [`try_simulate_compiled`] always use the fast path (the reference
/// engine predates tracing and pre-lowering). One behavioural caveat: the
/// seed engine keeps its original assert-on-deadlock, so a malformed
/// schedule panics under the switch where the fast path returns
/// [`SimError::Deadlock`] — flip it only around runs known to complete.
pub fn set_reference_engine(on: bool) {
    FORCE_REFERENCE_ENGINE.store(on, Ordering::Relaxed);
}

/// True when [`set_reference_engine`] has routed simulations to the seed
/// engine.
pub fn reference_engine() -> bool {
    FORCE_REFERENCE_ENGINE.load(Ordering::Relaxed)
}

/// Engine knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimOptions {
    /// Post upcoming receives while computing (§4.2). On by default, as in
    /// the paper's runtime; turn off to measure the ablation.
    pub prefetch: bool,
    /// How many upcoming receive groups to post at each compute start.
    pub recv_lookahead: usize,
    /// How many actions ahead the prefetch scanner may look.
    pub lookahead_window: usize,
    /// Fraction of the data-parallel gradient all-reduce hidden behind the
    /// backward cooldown (DDP-style bucketing overlaps gradient
    /// communication with remaining compute; 0.8 is the conventional
    /// well-tuned figure). Only the exposed remainder is charged, and the
    /// value is clamped to `[0, 1]` at evaluation time.
    pub allreduce_overlap: f64,
    /// Lower the executed spans and transfers into a
    /// [`hanayo_trace::Trace`] (returned by [`simulate_traced`]). Off by
    /// default: the untraced fast path stays branch-cheap and the
    /// `engine_fastpath` bench guards it. Tracing never perturbs the
    /// report — traced and untraced runs are bit-identical.
    pub trace: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            prefetch: true,
            recv_lookahead: 1,
            lookahead_window: 8,
            allreduce_overlap: 0.8,
            trace: false,
        }
    }
}

/// A non-finite or non-positive quantity that would corrupt the simulator.
///
/// [`Tm`]'s total order is well-defined even for NaN, but a NaN cost or
/// bandwidth silently poisons every downstream time; negative values
/// reorder the event heap. Inputs are therefore vetted up front: cost
/// entries must be finite and positive, bandwidths positive (infinite is
/// legal — loopback links), latencies finite and non-negative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NumericsError {
    /// A per-stage cost-table entry is not finite-positive.
    Cost {
        /// Which table (`fwd_flops`, `bwd_flops`, `layers_per_stage`).
        field: &'static str,
        /// Offending stage.
        stage: usize,
        /// Offending value.
        value: f64,
    },
    /// A link bandwidth is NaN or non-positive.
    Bandwidth {
        /// Link source device.
        src: usize,
        /// Link destination device.
        dst: usize,
        /// Offending value.
        value: f64,
    },
    /// A link latency is non-finite or negative.
    Latency {
        /// Link source device.
        src: usize,
        /// Link destination device.
        dst: usize,
        /// Offending value.
        value: f64,
    },
    /// The cluster's MFU is not finite-positive.
    Mfu {
        /// Offending value.
        value: f64,
    },
    /// `SimOptions::allreduce_overlap` is NaN or infinite.
    Overlap {
        /// Offending value.
        value: f64,
    },
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::Cost { field, stage, value } => {
                write!(f, "cost table {field}[{stage}] = {value} is not finite and positive")
            }
            NumericsError::Bandwidth { src, dst, value } => {
                write!(f, "link {src} -> {dst} bandwidth {value} is not positive")
            }
            NumericsError::Latency { src, dst, value } => {
                write!(f, "link {src} -> {dst} latency {value} is not finite and non-negative")
            }
            NumericsError::Mfu { value } => {
                write!(f, "cluster MFU {value} is not finite and positive")
            }
            NumericsError::Overlap { value } => {
                write!(f, "allreduce_overlap {value} is not finite")
            }
        }
    }
}

impl std::error::Error for NumericsError {}

/// Vet every number the engine will feed into event times. See
/// [`NumericsError`] for the exact rules. [`crate::evaluate_plan`] calls
/// this before simulating; [`simulate`] asserts it.
pub fn validate_numerics(
    cost: &CostTable,
    cluster: &ClusterSpec,
    opts: &SimOptions,
) -> Result<(), NumericsError> {
    let check_table = |field: &'static str, table: &[f64]| {
        for (stage, &value) in table.iter().enumerate() {
            if !(value.is_finite() && value > 0.0) {
                return Err(NumericsError::Cost { field, stage, value });
            }
        }
        Ok(())
    };
    check_table("fwd_flops", &cost.fwd_flops)?;
    check_table("bwd_flops", &cost.bwd_flops)?;
    check_table("layers_per_stage", &cost.layers_per_stage)?;
    if !(cluster.mfu.is_finite() && cluster.mfu > 0.0) {
        return Err(NumericsError::Mfu { value: cluster.mfu });
    }
    for src in 0..cluster.len() {
        for dst in 0..cluster.len() {
            let link = cluster.p2p(src, dst);
            // Infinite bandwidth is the loopback/ideal link; NaN and
            // non-positive values are the poison.
            if link.bandwidth.is_nan() || link.bandwidth <= 0.0 {
                return Err(NumericsError::Bandwidth { src, dst, value: link.bandwidth });
            }
            if !(link.latency.is_finite() && link.latency >= 0.0) {
                return Err(NumericsError::Latency { src, dst, value: link.latency });
            }
        }
    }
    if !opts.allreduce_overlap.is_finite() {
        return Err(NumericsError::Overlap { value: opts.allreduce_overlap });
    }
    Ok(())
}

/// Static weight and fp16-gradient bytes per device (counts replicated
/// groups twice). Shared by both engines so their memory accounting cannot
/// drift apart.
pub(crate) fn static_device_mem(schedule: &Schedule, cost: &CostTable) -> (Vec<u64>, Vec<u64>) {
    let p = schedule.lists.len();
    let per_device_sum = |table: &[u64]| -> Vec<u64> {
        (0..p)
            .map(|d| {
                schedule
                    .stage_map
                    .modules_on(hanayo_core::ids::DeviceId(d as u32))
                    .iter()
                    .map(|&(_, StageId(s))| table[s as usize])
                    .sum()
            })
            .collect()
    };
    (per_device_sum(&cost.weight_bytes), per_device_sum(&cost.grad_bytes))
}

/// Totally-ordered wrapper for event times.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Tm(f64);

impl Eq for Tm {}
impl PartialOrd for Tm {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Tm {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    ComputeDone { dev: u32, mb: u32, stage: u32, backward: bool, start: f64 },
    Arrived { dst: u32, key: u32 },
}

/// Pending event, carried inline in the heap. Ordered min-first by
/// `(t, seq)`; `seq` is unique per push, so the payload never participates
/// in the comparison and the pop order is the exact insertion-stable time
/// order the engine's determinism contract requires.
struct HeapEv {
    t: Tm,
    seq: u64,
    ev: Ev,
}

impl PartialEq for HeapEv {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for HeapEv {}
impl PartialOrd for HeapEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: `BinaryHeap` is a max-heap, the engine pops earliest
        // first.
        (other.t, other.seq).cmp(&(self.t, self.seq))
    }
}

/// Per-slot rendezvous state, one byte per `device · tag`. A single load
/// answers every "is the transfer ready/scheduled/arrived" question the
/// hot loop asks; post times live in parallel `f64` arrays that are only
/// read once the matching bit is set.
const SLOT_SEND: u8 = 1 << 0;
const SLOT_RECV: u8 = 1 << 1;
const SLOT_SCHED: u8 = 1 << 2;
const SLOT_ARRIVED: u8 = 1 << 3;

#[derive(Debug, Clone, Copy, PartialEq)]
enum DevState {
    Idle,
    Computing,
    /// Blocked on the message with this flat tag key.
    WaitRecv(u32),
    /// Blocked in the batch whose members are `batch_ops[start..end]`.
    WaitBatch(u32, u32),
    Done,
}

/// One compiled instruction: an [`Action`] with tags resolved to flat keys
/// and batched members flattened into side arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Compute {
        mb: u32,
        stage: u32,
        backward: bool,
    },
    Send {
        peer: u32,
        key: u32,
    },
    Recv {
        key: u32,
    },
    /// Members are `batch_ops[start..end]`.
    Batch {
        start: u32,
        end: u32,
    },
    Step,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BatchMember {
    recv: bool,
    peer: u32,
    key: u32,
}

/// A schedule lowered for the fast path: dense tag keys, opcode lists, and
/// the prefetch scanner's receive-group windows extracted once.
#[derive(PartialEq, Eq)]
struct Compiled {
    /// Dense tag-space size: `micro_batches · stages · 2`.
    ntags: usize,
    /// Opcode list per device.
    ops: Vec<Vec<Op>>,
    /// Flattened `BatchedComm` members, referenced by `Op::Batch` ranges.
    batch_ops: Vec<BatchMember>,
    /// Per device, per action index: `prefetch_keys[start..end]` are the
    /// receive tags the §4.2 scanner would post at that program counter.
    /// Only indices that can follow a compute are populated.
    prefetch: Vec<Vec<(u32, u32)>>,
    /// Flat storage for the prefetch windows, in exact scan order.
    prefetch_keys: Vec<u32>,
}

fn tag_key(tag: MsgTag, stages: u32) -> u32 {
    let payload = match tag.payload {
        Payload::Activation => 0,
        Payload::Gradient => 1,
    };
    (tag.mb.0 * stages + tag.stage.0) * 2 + payload
}

fn compile(schedule: &Schedule, opts: &SimOptions) -> Compiled {
    let stages = schedule.stage_map.stages;
    let ntags = (schedule.config.micro_batches * stages * 2) as usize;
    let key = |tag: MsgTag| -> u32 {
        let k = tag_key(tag, stages);
        assert!((k as usize) < ntags, "tag {tag} outside the schedule's tag space");
        k
    };

    let mut batch_ops = Vec::new();
    let mut prefetch_keys = Vec::new();
    let mut ops = Vec::with_capacity(schedule.lists.len());
    let mut prefetch = Vec::with_capacity(schedule.lists.len());

    for list in &schedule.lists {
        let compiled: Vec<Op> = list
            .actions
            .iter()
            .map(|action| match action {
                Action::Forward { mb, stage } => {
                    Op::Compute { mb: mb.0, stage: stage.0, backward: false }
                }
                Action::Backward { mb, stage } => {
                    Op::Compute { mb: mb.0, stage: stage.0, backward: true }
                }
                Action::Comm(op) => match op.dir {
                    CommDir::Send => Op::Send { peer: op.peer.0, key: key(op.tag) },
                    CommDir::Recv => Op::Recv { key: key(op.tag) },
                },
                Action::BatchedComm(members) => {
                    let start = batch_ops.len() as u32;
                    batch_ops.extend(members.iter().map(|op| BatchMember {
                        recv: op.dir == CommDir::Recv,
                        peer: op.peer.0,
                        key: key(op.tag),
                    }));
                    Op::Batch { start, end: batch_ops.len() as u32 }
                }
                Action::OptimizerStep => Op::Step,
            })
            .collect();

        // Precompute the §4.2 scan for every program counter a compute can
        // leave behind (prefetch fires at `pc + 1` of a compute action),
        // replicating the reference scanner exactly: single receives and
        // batches each count as one group — a batch even when it contains
        // no receive — and members are posted in op order.
        let mut windows = vec![(0u32, 0u32); list.actions.len() + 1];
        for (i, window) in windows.iter_mut().enumerate() {
            if i == 0 || !list.actions[i - 1].is_compute() {
                continue;
            }
            let start = prefetch_keys.len() as u32;
            let mut groups = 0usize;
            for action in list.actions.iter().skip(i).take(opts.lookahead_window) {
                match action {
                    Action::Comm(op) if op.dir == CommDir::Recv => {
                        prefetch_keys.push(key(op.tag));
                        groups += 1;
                    }
                    Action::BatchedComm(members) => {
                        prefetch_keys.extend(
                            members
                                .iter()
                                .filter(|op| op.dir == CommDir::Recv)
                                .map(|op| key(op.tag)),
                        );
                        groups += 1;
                    }
                    _ => {}
                }
                if groups >= opts.recv_lookahead {
                    break;
                }
            }
            *window = (start, prefetch_keys.len() as u32);
        }

        ops.push(compiled);
        prefetch.push(windows);
    }

    Compiled { ntags, ops, batch_ops, prefetch, prefetch_keys }
}

/// A schedule lowered once for repeated simulation.
///
/// [`try_simulate`] re-lowers its schedule on every call; inside a tuner
/// sweep the same `(schedule, lookahead options)` pair is simulated under
/// many cost tables and sub-clusters, so the lowering is pure overhead
/// after the first run. [`compile_schedule`] hoists it:
///
/// ```text
/// let compiled = compile_schedule(&schedule, &opts);
/// for (cost, sub) in variants {
///     let report = try_simulate_compiled(&compiled, &schedule, cost, sub, opts)?;
/// }
/// ```
///
/// The lowering bakes in exactly two option fields — `recv_lookahead` and
/// `lookahead_window`, which shape the prefetch windows — so one
/// `CompiledSchedule` is valid for every `SimOptions` agreeing on those
/// two (e.g. prefetch on/off share a lowering). [`try_simulate_compiled`]
/// rejects a mismatched reuse with [`SimError::StaleCompile`] rather than
/// silently simulating the wrong prefetch plan.
pub struct CompiledSchedule {
    inner: Compiled,
    devices: usize,
    recv_lookahead: usize,
    lookahead_window: usize,
}

impl CompiledSchedule {
    /// True when this lowering is valid for `opts`: the baked-in lookahead
    /// parameters match. Every other option is applied at simulation time.
    pub fn matches(&self, opts: &SimOptions) -> bool {
        self.recv_lookahead == opts.recv_lookahead && self.lookahead_window == opts.lookahead_window
    }

    /// True when the two lowerings are semantically identical: same opcode
    /// lists and same prefetch windows. Lookahead parameters that differ
    /// can still converge to the same windows (the §4.2 scan saturates once
    /// every receive group inside `lookahead_window` is collected), and the
    /// engine consumes nothing but this content — so two runs through
    /// lowerings that compare equal here produce bit-identical reports for
    /// any `SimOptions` each of them [`matches`](Self::matches). The tuner
    /// uses this to collapse lookahead ablations that lowered to the same
    /// plan into a single simulation.
    pub fn same_lowering(&self, other: &CompiledSchedule) -> bool {
        self.devices == other.devices && self.inner == other.inner
    }
}

/// Lower `schedule` once for reuse across [`try_simulate_compiled`] calls.
/// Only `opts.recv_lookahead` / `opts.lookahead_window` are consumed here;
/// see [`CompiledSchedule`] for the reuse contract.
pub fn compile_schedule(schedule: &Schedule, opts: &SimOptions) -> CompiledSchedule {
    CompiledSchedule {
        inner: compile(schedule, opts),
        devices: schedule.lists.len(),
        recv_lookahead: opts.recv_lookahead,
        lookahead_window: opts.lookahead_window,
    }
}

struct Engine<'a> {
    compiled: &'a Compiled,
    cost: &'a CostTable,
    cluster: &'a ClusterSpec,
    opts: SimOptions,

    p: usize,
    nodes: usize,

    pc: Vec<usize>,
    state: Vec<DevState>,
    block_start: Vec<f64>,
    finish: Vec<f64>,

    /// `SLOT_*` bit set per `device · ntags + key`.
    slot_flags: Vec<u8>,
    /// Sender device per slot; valid once `SLOT_SEND` is set.
    send_src: Vec<u32>,
    /// Send post time per slot; valid once `SLOT_SEND` is set.
    send_time: Vec<f64>,
    /// Receive post time per slot; valid once `SLOT_RECV` is set.
    recv_time: Vec<f64>,
    /// FIFO cursor per directed intra-node device pair (`src · p + dst`).
    intra_free: Vec<f64>,
    /// FIFO cursor per directed node pair (`src_node · nodes + dst_node`).
    inter_free: Vec<f64>,

    events: BinaryHeap<HeapEv>,
    seq: u64,

    busy: Vec<f64>,
    comm_wait: Vec<f64>,
    spans: Vec<Vec<SimSpan>>,
    cur_mem: Vec<u64>,
    peak_mem: Vec<u64>,

    /// Stage count, for decoding flat tag keys back into `(mb, stage)`
    /// when lowering transfers into trace events.
    stages: u32,
    /// Trace events accumulated when `opts.trace` is set (empty, never
    /// touched, otherwise).
    trace_events: Vec<TraceEvent>,
    /// Rendezvous stalls: receives (single or batched) that blocked
    /// because the matching send had not arrived. A plain local add on
    /// the hot path; flushed to the metrics registry once per run.
    stalls: u64,
}

impl<'a> Engine<'a> {
    #[inline]
    fn slot(&self, dev: usize, key: u32) -> usize {
        dev * self.compiled.ntags + key as usize
    }

    fn push_event(&mut self, t: f64, ev: Ev) {
        self.events.push(HeapEv { t: Tm(t), seq: self.seq, ev });
        self.seq += 1;
    }

    /// Start the transfer for `(dst, key)` if both halves are posted.
    fn try_schedule(&mut self, dst: usize, key: u32) {
        let slot = self.slot(dst, key);
        // One load: bail unless both halves are posted and the transfer
        // has not been scheduled yet.
        if self.slot_flags[slot] & (SLOT_SEND | SLOT_RECV | SLOT_SCHED) != SLOT_SEND | SLOT_RECV {
            return;
        }
        let src = self.send_src[slot] as usize;
        let t_send = self.send_time[slot];
        let t_recv = self.recv_time[slot];
        let ready = t_send.max(t_recv);
        let link = self.cluster.p2p(src, dst);
        let (na, nb) = (self.cluster.node[src], self.cluster.node[dst]);
        let cursor = if na == nb {
            &mut self.intra_free[src * self.p + dst]
        } else {
            &mut self.inter_free[na as usize * self.nodes + nb as usize]
        };
        let free = cursor.max(ready);
        let occupancy = if link.bandwidth.is_finite() {
            self.cost.msg_bytes as f64 / link.bandwidth
        } else {
            0.0
        };
        *cursor = free + occupancy;
        self.slot_flags[slot] |= SLOT_SCHED;
        if self.opts.trace {
            // Lower the rendezvous transfer: the send occupies the link on
            // the source; the receive spans transfer start to arrival on
            // the destination.
            let (mb, stage) = self.decode_tag(key);
            self.trace_events.push(TraceEvent {
                device: src as u32,
                kind: TraceKind::Send,
                mb,
                stage,
                t_start: free,
                t_end: free + occupancy,
            });
            self.trace_events.push(TraceEvent {
                device: dst as u32,
                kind: TraceKind::Recv,
                mb,
                stage,
                t_start: free,
                t_end: free + occupancy + link.latency,
            });
        }
        self.push_event(free + occupancy + link.latency, Ev::Arrived { dst: dst as u32, key });
    }

    /// Invert [`tag_key`]: flat key → `(mb, stage)`.
    #[inline]
    fn decode_tag(&self, key: u32) -> (Option<u32>, Option<u32>) {
        let pair = key / 2;
        (Some(pair / self.stages), Some(pair % self.stages))
    }

    fn post_recv(&mut self, dst: usize, key: u32, now: f64) {
        let slot = self.slot(dst, key);
        if self.slot_flags[slot] & SLOT_RECV == 0 {
            self.slot_flags[slot] |= SLOT_RECV;
            self.recv_time[slot] = now;
        }
        self.try_schedule(dst, key);
    }

    fn post_send(&mut self, src: usize, dst: usize, key: u32, now: f64) {
        let slot = self.slot(dst, key);
        if self.slot_flags[slot] & SLOT_SEND == 0 {
            self.slot_flags[slot] |= SLOT_SEND;
            self.send_src[slot] = src as u32;
            self.send_time[slot] = now;
        }
        self.try_schedule(dst, key);
    }

    /// Begin a forward/backward on device `d`; the device stays busy until
    /// the `ComputeDone` event fires.
    fn start_compute(&mut self, d: usize, now: f64, mb: u32, stage: u32, backward: bool) {
        let flops = if backward {
            self.cost.bwd_flops[stage as usize]
        } else {
            self.cost.fwd_flops[stage as usize]
        };
        let dt = flops / self.cluster.effective_flops(d);
        self.state[d] = DevState::Computing;
        self.pc[d] += 1;
        if self.opts.prefetch {
            // §4.2 prefetch from the precomputed window table.
            let (start, end) = self.compiled.prefetch[d][self.pc[d]];
            for i in start..end {
                let key = self.compiled.prefetch_keys[i as usize];
                self.post_recv(d, key, now);
            }
        }
        self.push_event(
            now + dt,
            Ev::ComputeDone { dev: d as u32, mb, stage, backward, start: now },
        );
    }

    #[inline]
    fn batch_recvs_arrived(&self, d: usize, start: u32, end: u32) -> bool {
        self.compiled.batch_ops[start as usize..end as usize]
            .iter()
            .filter(|m| m.recv)
            .all(|m| self.slot_flags[d * self.compiled.ntags + m.key as usize] & SLOT_ARRIVED != 0)
    }

    /// Run device `d` forward from its program counter until it blocks,
    /// starts a compute, or finishes.
    fn advance(&mut self, d: usize, now: f64) {
        loop {
            let ops = &self.compiled.ops[d];
            if self.pc[d] >= ops.len() {
                if self.state[d] != DevState::Done {
                    self.state[d] = DevState::Done;
                    self.finish[d] = now;
                }
                return;
            }
            match ops[self.pc[d]] {
                Op::Compute { mb, stage, backward } => {
                    self.start_compute(d, now, mb, stage, backward);
                    return;
                }
                Op::Send { peer, key } => {
                    self.post_send(d, peer as usize, key, now);
                    self.pc[d] += 1;
                }
                Op::Recv { key } => {
                    self.post_recv(d, key, now);
                    if self.slot_flags[self.slot(d, key)] & SLOT_ARRIVED != 0 {
                        self.pc[d] += 1;
                    } else {
                        self.stalls += 1;
                        self.state[d] = DevState::WaitRecv(key);
                        self.block_start[d] = now;
                        return;
                    }
                }
                Op::Batch { start, end } => {
                    for i in start as usize..end as usize {
                        let m = self.compiled.batch_ops[i];
                        if m.recv {
                            self.post_recv(d, m.key, now);
                        } else {
                            self.post_send(d, m.peer as usize, m.key, now);
                        }
                    }
                    if self.batch_recvs_arrived(d, start, end) {
                        self.pc[d] += 1;
                    } else {
                        self.stalls += 1;
                        self.state[d] = DevState::WaitBatch(start, end);
                        self.block_start[d] = now;
                        return;
                    }
                }
                Op::Step => {
                    if self.opts.trace {
                        // The simulator charges the flush no time; a
                        // zero-duration marker keeps the event stream
                        // structurally identical to the runtime's.
                        self.trace_events.push(TraceEvent {
                            device: d as u32,
                            kind: TraceKind::Optim,
                            mb: None,
                            stage: None,
                            t_start: now,
                            t_end: now,
                        });
                    }
                    self.pc[d] += 1;
                }
            }
        }
    }

    fn handle(&mut self, t: f64, ev: Ev) {
        match ev {
            Ev::ComputeDone { dev, mb, stage, backward, start } => {
                let dev = dev as usize;
                self.busy[dev] += t - start;
                self.spans[dev].push(SimSpan { start, end: t, mb, stage, backward });
                if self.opts.trace {
                    self.trace_events.push(TraceEvent {
                        device: dev as u32,
                        kind: if backward { TraceKind::Bwd } else { TraceKind::Fwd },
                        mb: Some(mb),
                        stage: Some(stage),
                        t_start: start,
                        t_end: t,
                    });
                }
                let bytes = self.cost.stash_bytes[stage as usize];
                if backward {
                    self.cur_mem[dev] = self.cur_mem[dev].saturating_sub(bytes);
                } else {
                    self.cur_mem[dev] += bytes;
                    self.peak_mem[dev] = self.peak_mem[dev].max(self.cur_mem[dev]);
                }
                self.state[dev] = DevState::Idle;
                self.advance(dev, t);
            }
            Ev::Arrived { dst, key } => {
                let dst = dst as usize;
                let slot = self.slot(dst, key);
                self.slot_flags[slot] |= SLOT_ARRIVED;
                match self.state[dst] {
                    DevState::WaitRecv(w) if w == key => {
                        self.comm_wait[dst] += t - self.block_start[dst];
                        self.state[dst] = DevState::Idle;
                        self.pc[dst] += 1;
                        self.advance(dst, t);
                    }
                    DevState::WaitBatch(start, end)
                        if self.batch_recvs_arrived(dst, start, end) =>
                    {
                        self.comm_wait[dst] += t - self.block_start[dst];
                        self.state[dst] = DevState::Idle;
                        self.pc[dst] += 1;
                        self.advance(dst, t);
                    }
                    _ => {}
                }
            }
        }
    }
}

/// A rejected simulation input or run — the typed form of what
/// [`simulate`] panics on. Produced by [`try_simulate`] /
/// [`try_simulate_traced`] so a sweep or search can turn one malformed
/// candidate into a rejection instead of dying.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The cluster's device count differs from the schedule's.
    DeviceCountMismatch {
        /// Devices in the schedule.
        schedule: usize,
        /// Devices in the cluster.
        cluster: usize,
    },
    /// The cost table's stage count differs from the schedule's.
    StageCountMismatch {
        /// Stages in the schedule.
        schedule: usize,
        /// Stages in the cost table.
        cost: usize,
    },
    /// A cost/link/option value failed [`validate_numerics`].
    Numerics(NumericsError),
    /// The run stalled before every device flushed — a malformed action
    /// list (e.g. an unmatched send/recv pair in a hand-built schedule).
    Deadlock {
        /// Devices that never reached `Done`, with their program counters.
        stalled: Vec<(usize, usize)>,
    },
    /// A [`CompiledSchedule`] was reused with options it was not lowered
    /// for (the prefetch windows bake in the lookahead parameters) or with
    /// a different schedule.
    StaleCompile {
        /// `(recv_lookahead, lookahead_window)` the lowering baked in.
        compiled: (usize, usize),
        /// `(recv_lookahead, lookahead_window)` requested at simulation.
        requested: (usize, usize),
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DeviceCountMismatch { schedule, cluster } => {
                write!(f, "schedule has {schedule} devices, cluster has {cluster}")
            }
            SimError::StageCountMismatch { schedule, cost } => {
                write!(f, "schedule has {schedule} stages, cost table has {cost}")
            }
            SimError::Numerics(e) => write!(f, "invalid simulation inputs: {e}"),
            SimError::Deadlock { stalled } => {
                write!(f, "simulation deadlocked: stalled (device, pc) pairs {stalled:?}")
            }
            SimError::StaleCompile { compiled, requested } => {
                write!(
                    f,
                    "compiled schedule was lowered for (recv_lookahead, lookahead_window) = \
                     {compiled:?} but simulation requested {requested:?}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<NumericsError> for SimError {
    fn from(e: NumericsError) -> Self {
        SimError::Numerics(e)
    }
}

/// Execute one iteration of `schedule` on `cluster` with per-stage costs
/// from `cost`. The cluster must have exactly the pipeline's device count,
/// and all costs/link characteristics must pass [`validate_numerics`].
/// Panics on malformed inputs — use [`try_simulate`] for the typed form.
pub fn simulate(
    schedule: &Schedule,
    cost: &CostTable,
    cluster: &ClusterSpec,
    opts: SimOptions,
) -> SimReport {
    simulate_traced(schedule, cost, cluster, opts).0
}

/// [`simulate`] with a typed error instead of a panic: malformed shapes,
/// non-finite inputs and deadlocking schedules come back as a
/// [`SimError`]. This is the entry the tuner, the sweep and the schedule
/// search score candidates through.
pub fn try_simulate(
    schedule: &Schedule,
    cost: &CostTable,
    cluster: &ClusterSpec,
    opts: SimOptions,
) -> Result<SimReport, SimError> {
    try_simulate_traced(schedule, cost, cluster, opts).map(|(report, _)| report)
}

/// [`simulate`], additionally lowering the run into a [`Trace`] when
/// `opts.trace` is set (`None` otherwise). The report is bit-identical to
/// an untraced run, and the trace's makespan equals the report's
/// `iteration_time` exactly — the `trace_truth` suite pins both across
/// every golden scheme. Panicking wrapper over [`try_simulate_traced`].
pub fn simulate_traced(
    schedule: &Schedule,
    cost: &CostTable,
    cluster: &ClusterSpec,
    opts: SimOptions,
) -> (SimReport, Option<Trace>) {
    try_simulate_traced(schedule, cost, cluster, opts).unwrap_or_else(|e| panic!("{e}"))
}

/// The typed core of the engine: every guard that used to `panic!` /
/// `assert!` on malformed inputs returns its [`SimError`] instead.
pub fn try_simulate_traced(
    schedule: &Schedule,
    cost: &CostTable,
    cluster: &ClusterSpec,
    opts: SimOptions,
) -> Result<(SimReport, Option<Trace>), SimError> {
    check_shapes(schedule, cost, cluster)?;
    validate_numerics(cost, cluster, &opts)?;
    if reference_engine() && !opts.trace {
        // Seed-engine detour for honest benchmarking; bit-identical
        // reports, different wall-clock. The reference engine cannot
        // trace, so traced runs stay on the fast path.
        return Ok((crate::reference::simulate_reference(schedule, cost, cluster, opts), None));
    }
    let compiled = compile(schedule, &opts);
    run_compiled(&compiled, schedule, cost, cluster, opts)
}

/// [`try_simulate`] against a pre-lowered schedule: skips the per-call
/// [`compile_schedule`] work. The report is bit-identical to
/// [`try_simulate`] with the same inputs — the lowering is a pure function
/// of `(schedule, lookahead options)`, so hoisting it cannot perturb a
/// single event time. `schedule` must be the exact schedule `compiled` was
/// lowered from and `opts` must [`CompiledSchedule::matches`] it.
pub fn try_simulate_compiled(
    compiled: &CompiledSchedule,
    schedule: &Schedule,
    cost: &CostTable,
    cluster: &ClusterSpec,
    opts: SimOptions,
) -> Result<SimReport, SimError> {
    if !compiled.matches(&opts) || compiled.devices != schedule.lists.len() {
        return Err(SimError::StaleCompile {
            compiled: (compiled.recv_lookahead, compiled.lookahead_window),
            requested: (opts.recv_lookahead, opts.lookahead_window),
        });
    }
    check_shapes(schedule, cost, cluster)?;
    validate_numerics(cost, cluster, &opts)?;
    run_compiled(&compiled.inner, schedule, cost, cluster, opts).map(|(report, _)| report)
}

fn check_shapes(
    schedule: &Schedule,
    cost: &CostTable,
    cluster: &ClusterSpec,
) -> Result<(), SimError> {
    let p = schedule.lists.len();
    if cluster.len() != p {
        return Err(SimError::DeviceCountMismatch { schedule: p, cluster: cluster.len() });
    }
    if cost.stages() != schedule.stage_map.stages as usize {
        return Err(SimError::StageCountMismatch {
            schedule: schedule.stage_map.stages as usize,
            cost: cost.stages(),
        });
    }
    Ok(())
}

/// Event-loop body shared by the per-call and pre-compiled entries.
fn run_compiled(
    compiled: &Compiled,
    schedule: &Schedule,
    cost: &CostTable,
    cluster: &ClusterSpec,
    opts: SimOptions,
) -> Result<(SimReport, Option<Trace>), SimError> {
    let p = schedule.lists.len();
    let (weight_mem, grad_mem) = static_device_mem(schedule, cost);
    let nodes = cluster.node.iter().copied().max().unwrap_or(0) as usize + 1;
    let slots = p * compiled.ntags;

    let mut eng = Engine {
        compiled,
        cost,
        cluster,
        opts,
        p,
        nodes,
        pc: vec![0; p],
        state: vec![DevState::Idle; p],
        block_start: vec![0.0; p],
        finish: vec![0.0; p],
        slot_flags: vec![0; slots],
        send_src: vec![0; slots],
        send_time: vec![0.0; slots],
        recv_time: vec![0.0; slots],
        intra_free: vec![0.0; p * p],
        inter_free: vec![0.0; nodes * nodes],
        events: BinaryHeap::with_capacity(4 * p.max(16)),
        seq: 0,
        busy: vec![0.0; p],
        comm_wait: vec![0.0; p],
        spans: (0..p).map(|_| Vec::new()).collect(),
        cur_mem: weight_mem.clone(),
        peak_mem: weight_mem.clone(),
        stages: schedule.stage_map.stages,
        trace_events: Vec::new(),
        stalls: 0,
    };

    for d in 0..p {
        eng.advance(d, 0.0);
    }
    // Local counter on the hot loop; one registry batch after the run.
    let mut events_popped: u64 = 0;
    while let Some(HeapEv { t: Tm(t), ev, .. }) = eng.events.pop() {
        events_popped += 1;
        eng.handle(t, ev);
    }
    if hanayo_metrics::enabled() {
        hanayo_metrics::counter_add("hanayo_sim_runs_total", &[], 1);
        hanayo_metrics::counter_add("hanayo_sim_events_total", &[], events_popped);
        hanayo_metrics::counter_add("hanayo_sim_rendezvous_stalls_total", &[], eng.stalls);
    }
    if !eng.state.iter().all(|s| *s == DevState::Done) {
        let stalled = eng
            .state
            .iter()
            .enumerate()
            .filter(|(_, s)| **s != DevState::Done)
            .map(|(d, _)| (d, eng.pc[d]))
            .collect();
        return Err(SimError::Deadlock { stalled });
    }

    let iteration_time = eng.finish.iter().cloned().fold(0.0, f64::max);
    let total_busy: f64 = eng.busy.iter().sum();
    let bubble_ratio =
        if iteration_time > 0.0 { 1.0 - total_busy / (iteration_time * p as f64) } else { 0.0 };
    let trace = opts.trace.then(|| {
        let mut trace = Trace { devices: p as u32, events: std::mem::take(&mut eng.trace_events) };
        trace.normalize();
        trace
    });
    let report = SimReport {
        iteration_time,
        device_busy: eng.busy,
        device_comm_wait: eng.comm_wait,
        bubble_ratio,
        peak_mem: eng.peak_mem,
        weight_mem,
        grad_mem,
        spans: eng.spans,
    };
    Ok((report, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::simulate_reference;
    use hanayo_cluster::topology::{fc_full_nvlink, lonestar6, paper_clusters};
    use hanayo_core::config::{PipelineConfig, Scheme};
    use hanayo_core::schedule::build_schedule;
    use hanayo_model::{CostTable, ModelConfig};

    fn run(
        p: u32,
        b: u32,
        scheme: Scheme,
        cluster: &hanayo_cluster::ClusterSpec,
        opts: SimOptions,
    ) -> SimReport {
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let cost = CostTable::build(&ModelConfig::bert64(), cfg.stages(), 1);
        simulate(&schedule, &cost, cluster, opts)
    }

    #[test]
    fn precompiled_simulation_is_bit_identical_and_rejects_stale_reuse() {
        let cfg = PipelineConfig::new(4, 8, Scheme::Hanayo { waves: 2 }).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let cost = CostTable::build(&ModelConfig::bert64(), cfg.stages(), 1);
        let cluster = fc_full_nvlink(4);
        let opts = SimOptions::default();
        let compiled = compile_schedule(&schedule, &opts);
        let direct = try_simulate(&schedule, &cost, &cluster, opts).unwrap();
        let pre = try_simulate_compiled(&compiled, &schedule, &cost, &cluster, opts).unwrap();
        assert_eq!(direct, pre, "hoisting the lowering must not perturb a single event");
        // Prefetch is applied at simulation time, so the ablation shares
        // the lowering...
        let ablated = SimOptions { prefetch: false, ..opts };
        assert!(compiled.matches(&ablated));
        assert_eq!(
            try_simulate_compiled(&compiled, &schedule, &cost, &cluster, ablated).unwrap(),
            try_simulate(&schedule, &cost, &cluster, ablated).unwrap(),
        );
        // ...while a different lookahead is baked into the prefetch
        // windows and must be rejected, not silently mis-simulated.
        let stale = SimOptions { recv_lookahead: opts.recv_lookahead + 1, ..opts };
        assert!(!compiled.matches(&stale));
        assert!(matches!(
            try_simulate_compiled(&compiled, &schedule, &cost, &cluster, stale),
            Err(SimError::StaleCompile { .. })
        ));
    }

    #[test]
    fn reference_engine_switch_is_bit_identical_and_restores() {
        let cfg = PipelineConfig::new(4, 8, Scheme::Hanayo { waves: 2 }).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let cost = CostTable::build(&ModelConfig::bert64(), cfg.stages(), 1);
        let cluster = lonestar6(4);
        let opts = SimOptions::default();
        let fast = try_simulate(&schedule, &cost, &cluster, opts).unwrap();
        set_reference_engine(true);
        assert!(reference_engine());
        let seed = try_simulate(&schedule, &cost, &cluster, opts).unwrap();
        set_reference_engine(false);
        assert_eq!(fast, seed, "the engine switch must not perturb a single report bit");
        assert!(!reference_engine());
    }

    #[test]
    fn gpipe_iteration_close_to_closed_form() {
        let cluster = fc_full_nvlink(8);
        let r = run(8, 8, Scheme::GPipe, &cluster, SimOptions::default());
        // (B + P - 1) * (tf + tb) with tf = stage forward time.
        let cost = CostTable::build(&ModelConfig::bert64(), 8, 1);
        let tf = cost.fwd_flops[0] / cluster.effective_flops(0);
        let expect = 15.0 * 3.0 * tf;
        assert!(
            (r.iteration_time - expect).abs() / expect < 0.05,
            "sim {} vs closed form {}",
            r.iteration_time,
            expect
        );
    }

    #[test]
    fn busy_time_equals_total_flops() {
        let cluster = fc_full_nvlink(4);
        let r = run(4, 4, Scheme::Dapple, &cluster, SimOptions::default());
        let cost = CostTable::build(&ModelConfig::bert64(), 4, 1);
        let total_flops: f64 =
            (cost.total_fwd_flops() * 3.0) * 4.0 /* B */ / cluster.effective_flops(0);
        let busy: f64 = r.device_busy.iter().sum();
        assert!((busy - total_flops).abs() / total_flops < 1e-9);
    }

    #[test]
    fn hanayo_beats_dapple_on_every_cluster() {
        for cluster in [fc_full_nvlink(8), lonestar6(8)] {
            let d = run(8, 8, Scheme::Dapple, &cluster, SimOptions::default());
            let h = run(8, 8, Scheme::Hanayo { waves: 2 }, &cluster, SimOptions::default());
            assert!(
                h.iteration_time < d.iteration_time,
                "{}: H-2 {} vs D {}",
                cluster.name,
                h.iteration_time,
                d.iteration_time
            );
        }
    }

    #[test]
    fn prefetch_never_hurts_and_helps_on_slow_fabric() {
        let cluster = lonestar6(8);
        let on = run(8, 8, Scheme::Hanayo { waves: 2 }, &cluster, SimOptions::default());
        let off = run(
            8,
            8,
            Scheme::Hanayo { waves: 2 },
            &cluster,
            SimOptions { prefetch: false, ..Default::default() },
        );
        assert!(on.iteration_time <= off.iteration_time * (1.0 + 1e-9));
        assert!(
            on.iteration_time < off.iteration_time,
            "prefetch should help on IB: on {} off {}",
            on.iteration_time,
            off.iteration_time
        );
    }

    #[test]
    fn memory_peaks_match_schedule_shape() {
        let cluster = fc_full_nvlink(4);
        let g = run(4, 8, Scheme::GPipe, &cluster, SimOptions::default());
        let d = run(4, 8, Scheme::Dapple, &cluster, SimOptions::default());
        // GPipe stashes all B micro-batches; DAPPLE at most P.
        assert!(g.highest_peak() > d.highest_peak());
        // Weight memory identical for the two straight pipes.
        assert_eq!(g.weight_mem, d.weight_mem);
    }

    #[test]
    fn chimera_native_doubles_weight_memory() {
        let cluster = fc_full_nvlink(4);
        let c = run(4, 4, Scheme::Chimera, &cluster, SimOptions::default());
        let d = run(4, 4, Scheme::Dapple, &cluster, SimOptions::default());
        for (cw, dw) in c.weight_mem.iter().zip(&d.weight_mem) {
            let ratio = *cw as f64 / *dw as f64;
            assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let cluster = lonestar6(8);
        let a = run(8, 16, Scheme::Hanayo { waves: 2 }, &cluster, SimOptions::default());
        let b = run(8, 16, Scheme::Hanayo { waves: 2 }, &cluster, SimOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn stash_drains_to_weights_only() {
        let cluster = fc_full_nvlink(4);
        let r = run(4, 4, Scheme::Hanayo { waves: 1 }, &cluster, SimOptions::default());
        // After a full iteration every stash is consumed; peak ≥ weights.
        for (peak, w) in r.peak_mem.iter().zip(&r.weight_mem) {
            assert!(peak >= w);
        }
    }

    #[test]
    fn comm_wait_is_positive_on_slow_fabric() {
        let r = run(8, 8, Scheme::Dapple, &lonestar6(8), SimOptions::default());
        let total_wait: f64 = r.device_comm_wait.iter().sum();
        assert!(total_wait > 0.0);
    }

    #[test]
    fn fast_path_matches_reference_bitwise_across_clusters_and_options() {
        for cluster in paper_clusters(8) {
            for scheme in
                [Scheme::GPipe, Scheme::Dapple, Scheme::Chimera, Scheme::Hanayo { waves: 2 }]
            {
                for opts in [
                    SimOptions::default(),
                    SimOptions { prefetch: false, ..Default::default() },
                    SimOptions { recv_lookahead: 3, lookahead_window: 16, ..Default::default() },
                ] {
                    let cfg = PipelineConfig::new(8, 8, scheme).unwrap();
                    let schedule = build_schedule(&cfg).unwrap();
                    let cost = CostTable::build(&ModelConfig::bert64(), cfg.stages(), 1);
                    let fast = simulate(&schedule, &cost, &cluster, opts);
                    let slow = simulate_reference(&schedule, &cost, &cluster, opts);
                    assert_eq!(fast, slow, "{}/{scheme}: engines diverged", cluster.name);
                }
            }
        }
    }

    #[test]
    fn engines_agree_bitwise_on_checkpointed_cost_tables() {
        // The stash policy flows in through the cost table; both engines
        // must account the mode-adjusted stash identically.
        use hanayo_model::Recompute;
        for cluster in paper_clusters(8) {
            for scheme in [Scheme::GPipe, Scheme::Dapple, Scheme::Hanayo { waves: 2 }] {
                let cfg = PipelineConfig::new(8, 8, scheme).unwrap();
                let schedule = build_schedule(&cfg).unwrap();
                let cost =
                    CostTable::build_with(&ModelConfig::bert64(), cfg.stages(), 1, Recompute::Full);
                let fast = simulate(&schedule, &cost, &cluster, SimOptions::default());
                let slow = simulate_reference(&schedule, &cost, &cluster, SimOptions::default());
                assert_eq!(fast, slow, "{}/{scheme}: engines diverged under Full", cluster.name);
                // Peak is weights + at most a handful of boundary tensors.
                for (peak, w) in fast.peak_mem.iter().zip(&fast.weight_mem) {
                    assert!(peak - w <= cost.msg_bytes * cfg.stages() as u64 * 8);
                }
            }
        }
    }

    #[test]
    fn tracing_never_perturbs_the_report_and_makespans_agree() {
        for cluster in paper_clusters(8) {
            for scheme in [Scheme::GPipe, Scheme::Dapple, Scheme::Hanayo { waves: 2 }] {
                let cfg = PipelineConfig::new(8, 8, scheme).unwrap();
                let schedule = build_schedule(&cfg).unwrap();
                let cost = CostTable::build(&ModelConfig::bert64(), cfg.stages(), 1);
                let untraced = simulate(&schedule, &cost, &cluster, SimOptions::default());
                let (traced, trace) = simulate_traced(
                    &schedule,
                    &cost,
                    &cluster,
                    SimOptions { trace: true, ..Default::default() },
                );
                assert_eq!(
                    untraced, traced,
                    "{}/{scheme}: tracing changed the report",
                    cluster.name
                );
                let trace = trace.expect("trace requested");
                trace.validate().unwrap_or_else(|e| panic!("{}/{scheme}: {e}", cluster.name));
                assert_eq!(trace.makespan(), traced.iteration_time, "{}/{scheme}", cluster.name);
                assert_eq!(trace.devices, 8);
                // Per-device busy from the trace is bit-identical to the
                // engine's own accumulation (same values, same order).
                assert_eq!(trace.device_busy(), traced.device_busy, "{}/{scheme}", cluster.name);
            }
        }
    }

    #[test]
    fn untraced_run_returns_no_trace() {
        let cfg = PipelineConfig::new(4, 4, Scheme::Dapple).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let cost = CostTable::build(&ModelConfig::bert64(), cfg.stages(), 1);
        let (_, trace) =
            simulate_traced(&schedule, &cost, &fc_full_nvlink(4), SimOptions::default());
        assert!(trace.is_none());
    }

    #[test]
    fn trace_transfers_decode_tags_and_carry_latency() {
        use hanayo_trace::TraceKind;
        let cfg = PipelineConfig::new(4, 4, Scheme::Dapple).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let cost = CostTable::build(&ModelConfig::bert64(), cfg.stages(), 1);
        let cluster = lonestar6(4);
        let (_, trace) = simulate_traced(
            &schedule,
            &cost,
            &cluster,
            SimOptions { trace: true, ..Default::default() },
        );
        let trace = trace.unwrap();
        let sends: Vec<_> = trace.events.iter().filter(|e| e.kind == TraceKind::Send).collect();
        let recvs: Vec<_> = trace.events.iter().filter(|e| e.kind == TraceKind::Recv).collect();
        assert_eq!(sends.len(), recvs.len());
        assert!(!sends.is_empty(), "a 4-device pipe transfers");
        // Every transfer names a micro-batch and stage inside the config.
        for e in sends.iter().chain(&recvs) {
            assert!(e.mb.unwrap() < 4);
            assert!(e.stage.unwrap() < cfg.stages());
        }
        // Receives outlast their paired sends by the wire latency.
        let dt = recvs[0].t_end - sends[0].t_end;
        assert!(dt > 0.0, "latency must separate occupancy from arrival");
    }

    #[test]
    fn numerics_validation_rejects_nan_costs() {
        let cluster = fc_full_nvlink(4);
        let mut cost = CostTable::build(&ModelConfig::bert64(), 4, 1);
        cost.bwd_flops[2] = f64::NAN;
        let err = validate_numerics(&cost, &cluster, &SimOptions::default()).unwrap_err();
        assert!(matches!(err, NumericsError::Cost { field: "bwd_flops", stage: 2, .. }));
    }

    #[test]
    fn numerics_validation_rejects_bad_links() {
        let cost = CostTable::build(&ModelConfig::bert64(), 4, 1);
        let mut cluster = fc_full_nvlink(4);
        cluster.links[1][2].bandwidth = -1.0;
        assert!(matches!(
            validate_numerics(&cost, &cluster, &SimOptions::default()),
            Err(NumericsError::Bandwidth { src: 1, dst: 2, .. })
        ));
        let mut cluster = fc_full_nvlink(4);
        cluster.links[0][3].latency = f64::NAN;
        assert!(matches!(
            validate_numerics(&cost, &cluster, &SimOptions::default()),
            Err(NumericsError::Latency { src: 0, dst: 3, .. })
        ));
    }

    #[test]
    fn numerics_validation_allows_ideal_links() {
        // Loopback links are infinite-bandwidth, zero-latency — legal.
        let cost = CostTable::build(&ModelConfig::bert64(), 4, 1);
        let cluster = fc_full_nvlink(4);
        assert_eq!(validate_numerics(&cost, &cluster, &SimOptions::default()), Ok(()));
    }

    #[test]
    #[should_panic(expected = "invalid simulation inputs")]
    fn simulate_panics_on_nan_bandwidth() {
        let cfg = PipelineConfig::new(4, 4, Scheme::Dapple).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let cost = CostTable::build(&ModelConfig::bert64(), cfg.stages(), 1);
        let mut cluster = fc_full_nvlink(4);
        cluster.links[0][1].bandwidth = f64::NAN;
        simulate(&schedule, &cost, &cluster, SimOptions::default());
    }
}
