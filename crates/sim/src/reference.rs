//! The seed discrete-event engine, kept verbatim as a *reference
//! implementation*.
//!
//! [`simulate_reference`] is the original `HashMap`/`HashSet`-keyed
//! executor the repository shipped with. The production engine in
//! [`crate::engine`] replaces its per-op hash churn with flat index-keyed
//! vectors and a precomputed prefetch table, but it must stay
//! *bit-identical* in every report it produces: the cross-engine tests and
//! the `engine_fastpath` criterion group both pit the two against each
//! other. Keep this file boring — any behavioural change here invalidates
//! the baseline the fast path is measured against.

use crate::engine::{static_device_mem, SimOptions};
use crate::report::{SimReport, SimSpan};
use hanayo_cluster::ClusterSpec;
use hanayo_core::action::{Action, CommDir, MsgTag, Schedule};
use hanayo_model::CostTable;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Totally-ordered wrapper for event times.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Tm(f64);

impl Eq for Tm {}
impl PartialOrd for Tm {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Tm {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    ComputeDone { dev: usize, mb: u32, stage: u32, backward: bool, start: f64 },
    Arrived { dst: usize, tag: MsgTag },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum DevState {
    Idle,
    Computing,
    WaitRecv(MsgTag),
    /// Blocked in the batch at this action index.
    WaitBatch(usize),
    Done,
}

/// Links serialise per directed device pair inside a node and per directed
/// node pair across nodes (one HCA per node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum LinkKey {
    Intra(u32, u32),
    Inter(u32, u32),
}

struct Engine<'a> {
    schedule: &'a Schedule,
    cost: &'a CostTable,
    cluster: &'a ClusterSpec,
    opts: SimOptions,

    pc: Vec<usize>,
    state: Vec<DevState>,
    block_start: Vec<f64>,
    finish: Vec<f64>,

    send_posted: HashMap<(usize, MsgTag), (usize, f64)>,
    recv_posted: HashMap<(usize, MsgTag), f64>,
    scheduled: HashSet<(usize, MsgTag)>,
    arrived: HashSet<(usize, MsgTag)>,
    link_free: HashMap<LinkKey, f64>,

    events: BinaryHeap<Reverse<(Tm, u64, usize)>>,
    event_pool: Vec<Ev>,
    seq: u64,

    busy: Vec<f64>,
    comm_wait: Vec<f64>,
    spans: Vec<Vec<SimSpan>>,
    cur_mem: Vec<u64>,
    peak_mem: Vec<u64>,
}

impl<'a> Engine<'a> {
    fn push_event(&mut self, t: f64, ev: Ev) {
        self.event_pool.push(ev);
        self.events.push(Reverse((Tm(t), self.seq, self.event_pool.len() - 1)));
        self.seq += 1;
    }

    fn link_key(&self, src: usize, dst: usize) -> LinkKey {
        let (na, nb) = (self.cluster.node[src], self.cluster.node[dst]);
        if na == nb {
            LinkKey::Intra(src as u32, dst as u32)
        } else {
            LinkKey::Inter(na, nb)
        }
    }

    /// Start the transfer for `(dst, tag)` if both halves are posted.
    fn try_schedule(&mut self, dst: usize, tag: MsgTag) {
        if self.scheduled.contains(&(dst, tag)) {
            return;
        }
        let Some(&(src, t_send)) = self.send_posted.get(&(dst, tag)) else { return };
        let Some(&t_recv) = self.recv_posted.get(&(dst, tag)) else { return };
        let ready = t_send.max(t_recv);
        let link = self.cluster.p2p(src, dst);
        let key = self.link_key(src, dst);
        let free = self.link_free.get(&key).copied().unwrap_or(0.0).max(ready);
        let occupancy = if link.bandwidth.is_finite() {
            self.cost.msg_bytes as f64 / link.bandwidth
        } else {
            0.0
        };
        self.link_free.insert(key, free + occupancy);
        self.scheduled.insert((dst, tag));
        self.push_event(free + occupancy + link.latency, Ev::Arrived { dst, tag });
    }

    fn post_recv(&mut self, dst: usize, tag: MsgTag, now: f64) {
        self.recv_posted.entry((dst, tag)).or_insert(now);
        self.try_schedule(dst, tag);
    }

    fn post_send(&mut self, src: usize, dst: usize, tag: MsgTag, now: f64) {
        self.send_posted.entry((dst, tag)).or_insert((src, now));
        self.try_schedule(dst, tag);
    }

    /// §4.2 prefetch: at compute start, post the next `recv_lookahead`
    /// receive groups found within the lookahead window.
    fn prefetch(&mut self, d: usize, from: usize, now: f64) {
        let actions = &self.schedule.lists[d].actions;
        let mut groups = 0usize;
        for action in actions.iter().skip(from).take(self.opts.lookahead_window) {
            match action {
                Action::Comm(op) if op.dir == CommDir::Recv => {
                    self.post_recv(d, op.tag, now);
                    groups += 1;
                }
                Action::BatchedComm(ops) => {
                    for op in ops.clone() {
                        if op.dir == CommDir::Recv {
                            self.post_recv(d, op.tag, now);
                        }
                    }
                    groups += 1;
                }
                _ => {}
            }
            if groups >= self.opts.recv_lookahead {
                break;
            }
        }
    }

    /// Begin a forward/backward on device `d`; the device stays busy until
    /// the `ComputeDone` event fires.
    fn start_compute(&mut self, d: usize, now: f64, mb: u32, stage: u32, backward: bool) {
        let flops = if backward {
            self.cost.bwd_flops[stage as usize]
        } else {
            self.cost.fwd_flops[stage as usize]
        };
        let dt = flops / self.cluster.effective_flops(d);
        self.state[d] = DevState::Computing;
        self.pc[d] += 1;
        if self.opts.prefetch {
            self.prefetch(d, self.pc[d], now);
        }
        self.push_event(now + dt, Ev::ComputeDone { dev: d, mb, stage, backward, start: now });
    }

    /// Run device `d` forward from its program counter until it blocks,
    /// starts a compute, or finishes.
    fn advance(&mut self, d: usize, now: f64) {
        loop {
            let actions = &self.schedule.lists[d].actions;
            if self.pc[d] >= actions.len() {
                if self.state[d] != DevState::Done {
                    self.state[d] = DevState::Done;
                    self.finish[d] = now;
                }
                return;
            }
            match actions[self.pc[d]].clone() {
                Action::Forward { mb, stage } => {
                    self.start_compute(d, now, mb.0, stage.0, false);
                    return;
                }
                Action::Backward { mb, stage } => {
                    self.start_compute(d, now, mb.0, stage.0, true);
                    return;
                }
                Action::Comm(op) => match op.dir {
                    CommDir::Send => {
                        self.post_send(d, op.peer.idx(), op.tag, now);
                        self.pc[d] += 1;
                    }
                    CommDir::Recv => {
                        self.post_recv(d, op.tag, now);
                        if self.arrived.contains(&(d, op.tag)) {
                            self.pc[d] += 1;
                        } else {
                            self.state[d] = DevState::WaitRecv(op.tag);
                            self.block_start[d] = now;
                            return;
                        }
                    }
                },
                Action::BatchedComm(ops) => {
                    for op in &ops {
                        match op.dir {
                            CommDir::Send => self.post_send(d, op.peer.idx(), op.tag, now),
                            CommDir::Recv => self.post_recv(d, op.tag, now),
                        }
                    }
                    let all_in = ops
                        .iter()
                        .filter(|o| o.dir == CommDir::Recv)
                        .all(|o| self.arrived.contains(&(d, o.tag)));
                    if all_in {
                        self.pc[d] += 1;
                    } else {
                        self.state[d] = DevState::WaitBatch(self.pc[d]);
                        self.block_start[d] = now;
                        return;
                    }
                }
                Action::OptimizerStep => {
                    self.pc[d] += 1;
                }
            }
        }
    }

    fn handle(&mut self, t: f64, ev: Ev) {
        match ev {
            Ev::ComputeDone { dev, mb, stage, backward, start } => {
                self.busy[dev] += t - start;
                self.spans[dev].push(SimSpan { start, end: t, mb, stage, backward });
                let bytes = self.cost.stash_bytes[stage as usize];
                if backward {
                    self.cur_mem[dev] = self.cur_mem[dev].saturating_sub(bytes);
                } else {
                    self.cur_mem[dev] += bytes;
                    self.peak_mem[dev] = self.peak_mem[dev].max(self.cur_mem[dev]);
                }
                self.state[dev] = DevState::Idle;
                self.advance(dev, t);
            }
            Ev::Arrived { dst, tag } => {
                self.arrived.insert((dst, tag));
                match self.state[dst] {
                    DevState::WaitRecv(w) if w == tag => {
                        self.comm_wait[dst] += t - self.block_start[dst];
                        self.state[dst] = DevState::Idle;
                        self.pc[dst] += 1;
                        self.advance(dst, t);
                    }
                    DevState::WaitBatch(idx) => {
                        let Action::BatchedComm(ops) = &self.schedule.lists[dst].actions[idx]
                        else {
                            unreachable!("WaitBatch points at a batch")
                        };
                        let all_in = ops
                            .iter()
                            .filter(|o| o.dir == CommDir::Recv)
                            .all(|o| self.arrived.contains(&(dst, o.tag)));
                        if all_in {
                            self.comm_wait[dst] += t - self.block_start[dst];
                            self.state[dst] = DevState::Idle;
                            self.pc[dst] += 1;
                            self.advance(dst, t);
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Execute one iteration of `schedule` with the seed engine. Semantics are
/// documented on [`crate::simulate`]; this implementation exists to
/// cross-check and benchmark the indexed fast path against.
pub fn simulate_reference(
    schedule: &Schedule,
    cost: &CostTable,
    cluster: &ClusterSpec,
    opts: SimOptions,
) -> SimReport {
    let p = schedule.lists.len();
    assert_eq!(cluster.len(), p, "cluster size must match the pipeline");
    assert_eq!(
        cost.stages(),
        schedule.stage_map.stages as usize,
        "cost table must match the stage count"
    );

    let (weight_mem, grad_mem) = static_device_mem(schedule, cost);

    let mut eng = Engine {
        schedule,
        cost,
        cluster,
        opts,
        pc: vec![0; p],
        state: vec![DevState::Idle; p],
        block_start: vec![0.0; p],
        finish: vec![0.0; p],
        send_posted: HashMap::new(),
        recv_posted: HashMap::new(),
        scheduled: HashSet::new(),
        arrived: HashSet::new(),
        link_free: HashMap::new(),
        events: BinaryHeap::new(),
        event_pool: Vec::new(),
        seq: 0,
        busy: vec![0.0; p],
        comm_wait: vec![0.0; p],
        spans: (0..p).map(|_| Vec::new()).collect(),
        cur_mem: weight_mem.clone(),
        peak_mem: weight_mem.clone(),
    };

    for d in 0..p {
        eng.advance(d, 0.0);
    }
    while let Some(Reverse((Tm(t), _, idx))) = eng.events.pop() {
        let ev = eng.event_pool[idx];
        eng.handle(t, ev);
    }
    assert!(
        eng.state.iter().all(|s| *s == DevState::Done),
        "simulation deadlocked: states {:?} pcs {:?}",
        eng.state,
        eng.pc
    );

    let iteration_time = eng.finish.iter().cloned().fold(0.0, f64::max);
    let total_busy: f64 = eng.busy.iter().sum();
    let bubble_ratio =
        if iteration_time > 0.0 { 1.0 - total_busy / (iteration_time * p as f64) } else { 0.0 };
    SimReport {
        iteration_time,
        device_busy: eng.busy,
        device_comm_wait: eng.comm_wait,
        bubble_ratio,
        peak_mem: eng.peak_mem,
        weight_mem,
        grad_mem,
        spans: eng.spans,
    }
}
