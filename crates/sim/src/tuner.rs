//! The auto-tuner: the paper's "unified framework [that] enables ...
//! automatically scal[ing] pipelines to more devices" and "performance
//! model with adaptability to choose from various pipeline parallelism
//! strategies to attain optimal performance" (§1, §6).
//!
//! Given a model, a cluster and a global batch, [`tune`] sweeps the whole
//! strategy space — method × wave count × (P, D) factorisations — through
//! the discrete-event simulator, discards OOM plans, and ranks the rest by
//! throughput. [`Tuning::best`] is the plan a user should run.

use crate::engine::SimOptions;
use crate::plan::{evaluate_plan, Method, ParallelPlan, PlanResult};
use hanayo_cluster::ClusterSpec;
use hanayo_model::ModelConfig;
use serde::{Deserialize, Serialize};

/// One evaluated candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The plan.
    pub plan: ParallelPlan,
    /// Its simulated outcome.
    pub result: PlanResult,
}

/// The ranked search outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tuning {
    /// Feasible candidates, best throughput first.
    pub ranked: Vec<Candidate>,
    /// Candidates rejected for memory, as `(plan, highest peak bytes)`.
    pub rejected_oom: Vec<(ParallelPlan, u64)>,
}

impl Tuning {
    /// The winning candidate (None if nothing fits).
    pub fn best(&self) -> Option<&Candidate> {
        self.ranked.first()
    }
}

/// Search knobs.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// Methods to consider.
    pub methods: Vec<Method>,
    /// Wave counts searched for Hanayo.
    pub waves: Vec<u32>,
    /// Minimum pipeline width to consider (deep models cannot shrink `P`
    /// below their memory share).
    pub min_pp: u32,
    /// Simulator options.
    pub sim: SimOptions,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            methods: vec![Method::GPipe, Method::Dapple, Method::ChimeraWave],
            waves: vec![1, 2, 4, 8],
            min_pp: 2,
            sim: SimOptions::default(),
        }
    }
}

/// Sweep the strategy space and rank feasible plans by throughput.
///
/// `global_micro_batches` is the batch per iteration across the whole
/// cluster; each candidate splits it evenly over its data-parallel groups
/// (plans whose `D` does not divide it are skipped).
pub fn tune(
    model: &ModelConfig,
    cluster: &ClusterSpec,
    global_micro_batches: u32,
    micro_batch_size: u32,
    opts: &TuneOptions,
) -> Tuning {
    let n = cluster.len() as u32;
    let mut ranked = Vec::new();
    let mut rejected = Vec::new();

    let mut methods = opts.methods.clone();
    methods.extend(opts.waves.iter().map(|&w| Method::Hanayo { waves: w }));

    for pp in (opts.min_pp..=n).filter(|pp| n.is_multiple_of(*pp)) {
        let dp = n / pp;
        if !global_micro_batches.is_multiple_of(dp) {
            continue;
        }
        let b = global_micro_batches / dp;
        for &method in &methods {
            let plan = ParallelPlan { method, dp, pp, micro_batches: b, micro_batch_size };
            let Ok(result) = evaluate_plan(&plan, model, cluster, opts.sim) else {
                continue;
            };
            if result.is_oom() {
                rejected.push((plan, result.peak_mem.iter().copied().max().unwrap_or(0)));
            } else {
                ranked.push(Candidate { plan, result });
            }
        }
    }
    ranked.sort_by(|a, b| b.result.throughput.total_cmp(&a.result.throughput));
    Tuning { ranked, rejected_oom: rejected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanayo_cluster::topology::{fc_full_nvlink, lonestar6};

    fn opts() -> TuneOptions {
        TuneOptions { waves: vec![1, 2, 4], min_pp: 4, ..Default::default() }
    }

    #[test]
    fn tuner_finds_a_feasible_plan() {
        let model = ModelConfig::bert64().with_train_bytes_per_param(8);
        let t = tune(&model, &fc_full_nvlink(8), 8, 1, &opts());
        let best = t.best().expect("something fits an 80GB box");
        assert!(best.result.throughput > 0.0);
    }

    #[test]
    fn best_plan_is_a_wave_schedule() {
        // On a healthy interconnect the tuner must pick Hanayo.
        let model = ModelConfig::bert64().with_train_bytes_per_param(8);
        let t = tune(&model, &fc_full_nvlink(8), 8, 1, &opts());
        let best = t.best().unwrap();
        assert!(
            matches!(best.plan.method, Method::Hanayo { .. }),
            "tuner chose {:?}",
            best.plan.method
        );
    }

    #[test]
    fn ranking_is_sorted_by_throughput() {
        let model = ModelConfig::gpt128().with_train_bytes_per_param(8);
        let t = tune(&model, &lonestar6(8), 8, 1, &opts());
        for pair in t.ranked.windows(2) {
            assert!(pair[0].result.throughput >= pair[1].result.throughput);
        }
    }

    #[test]
    fn oom_plans_are_reported_not_ranked() {
        // Full-Adam BERT on 40 GB cards with a deep micro-batch: some plans
        // must be rejected for memory and carry their peak.
        let model = ModelConfig::bert64();
        let t = tune(&model, &lonestar6(8), 16, 4, &opts());
        assert!(!t.rejected_oom.is_empty(), "expected OOM rejections");
        for (_, peak) in &t.rejected_oom {
            assert!(*peak > 38_000_000_000);
        }
        for c in &t.ranked {
            assert!(!c.result.is_oom());
        }
    }

    #[test]
    fn indivisible_batches_are_skipped_not_crashed() {
        let model = ModelConfig::gpt128().with_train_bytes_per_param(8);
        // 7 micro-batches over 8 devices: only D=1 factorisations apply.
        let t = tune(&model, &fc_full_nvlink(8), 7, 1, &opts());
        for c in &t.ranked {
            assert_eq!(c.plan.dp * c.plan.micro_batches, 7 * c.plan.dp / c.plan.dp);
            assert_eq!(c.plan.dp, 1);
        }
    }
}
