//! The auto-tuner: the paper's "unified framework [that] enables ...
//! automatically scal[ing] pipelines to more devices" and "performance
//! model with adaptability to choose from various pipeline parallelism
//! strategies to attain optimal performance" (§1, §6).
//!
//! Given a model, a cluster and a global batch, [`tune`] sweeps the whole
//! strategy space — method × wave count × (P, D) factorisations ×
//! activation-recomputation modes, optionally widened with simulator
//! ablations (prefetch on/off, `recv_lookahead`) and micro-batch
//! granularities — through the discrete-event simulator, records every
//! rejection, and ranks the rest by throughput. [`Tuning::best`] is the
//! plan a user should run. The recompute axis is what lets a
//! memory-constrained cluster escape an all-OOM verdict: checkpointed
//! variants of the same plans pay one extra forward per backward but stash
//! only boundary tensors.
//!
//! ## Parallel evaluation and determinism
//!
//! Candidates are simulated concurrently (`par_iter` over the candidate
//! list); the final ranking is nevertheless *byte-identical* to a serial
//! run ([`tune_serial`]) because results are collected in candidate order
//! and the ranking is a stable sort on `(throughput, plan)` keys — worker
//! interleaving never leaks into the output. A property test pits the two
//! against each other on random `(model, cluster, batch)` triples.
//!
//! ## Rejections
//!
//! Infeasible candidates are not silently dropped: each one carries a
//! [`Rejection`] — [`Rejection::Oom`] with the offending peak bytes and
//! device capacity, or [`Rejection::InvalidShape`] with the plan-level
//! reason (indivisible batch, odd Chimera split, cluster too small,
//! corrupt numerics). The sweep binary (`cargo run -p hanayo-repro --bin
//! sweep`) emits both tables as JSON.

use crate::cache::{CostKey, SchedKey, SweepCaches};
use crate::engine::{validate_numerics, SimOptions};
use crate::plan::{
    evaluate_plan, evaluate_resolved_with, resolve, Method, ParallelPlan, PlanResult, SimReuse,
};
use crate::search::{search_schedule, ScheduleSearchOptions, SearchedSchedule};
use hanayo_analyze::{check_deadlock_free, static_peak_mem};
use hanayo_ckpt::recovery;
use hanayo_ckpt::{RecoveryEval, RecoveryOptions};
use hanayo_cluster::ClusterSpec;
use hanayo_core::abort::AbortFlag;
use hanayo_core::action::Schedule;
use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::schedule::build_schedule;
use hanayo_model::{CostTable, ModelConfig, Recompute};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One evaluated candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The plan.
    pub plan: ParallelPlan,
    /// The simulator options it was evaluated under (the sweep may ablate
    /// prefetching or vary the receive lookahead per candidate).
    pub sim: SimOptions,
    /// Its simulated outcome.
    pub result: PlanResult,
    /// The failure/recovery evaluation, when the search sweeps checkpoint
    /// intervals ([`TuneOptions::checkpoint_intervals`]): the candidate's
    /// interval, its checkpoint stall and restart cost, and the goodput
    /// the ranking used. `None` on failure-free searches.
    pub recovery: Option<RecoveryEval>,
}

impl Candidate {
    /// The metric this candidate was ranked by: goodput under the
    /// expected failure rate when the recovery axis is active, raw
    /// throughput otherwise.
    pub fn ranking_metric(&self) -> f64 {
        self.recovery.map_or(self.result.throughput, |r| r.goodput_seq_per_s)
    }
}

/// Why a candidate was excluded from the ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Rejection {
    /// The plan simulated fine but some device exceeded its memory.
    Oom {
        /// The rejected plan.
        plan: ParallelPlan,
        /// The simulator options it was evaluated under.
        sim: SimOptions,
        /// Highest per-device peak, bytes.
        peak_bytes: u64,
        /// Capacity of the most overloaded device, bytes.
        capacity_bytes: u64,
        /// Global ranks of the devices that overflowed.
        devices: Vec<usize>,
    },
    /// The plan could not be evaluated at all (indivisible batch, odd
    /// Chimera split, cluster too small, schedule generation failure,
    /// corrupt numerics).
    InvalidShape {
        /// The rejected plan.
        plan: ParallelPlan,
        /// The simulator options it was evaluated under.
        sim: SimOptions,
        /// Human-readable reason (the underlying error's display form).
        reason: String,
    },
}

impl Rejection {
    /// The plan this rejection refers to.
    pub fn plan(&self) -> &ParallelPlan {
        match self {
            Rejection::Oom { plan, .. } | Rejection::InvalidShape { plan, .. } => plan,
        }
    }

    /// Is this a memory rejection?
    pub fn is_oom(&self) -> bool {
        matches!(self, Rejection::Oom { .. })
    }
}

/// The ranked search outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tuning {
    /// Feasible candidates, best throughput first (ties broken by plan
    /// shape, so the order is fully deterministic).
    pub ranked: Vec<Candidate>,
    /// Every infeasible candidate with the reason it was rejected.
    pub rejected: Vec<Rejection>,
    /// When [`TuneOptions::schedule_search`] is set: the schedule-space
    /// search result seeded from the winning plan's pipeline shape — a
    /// searched candidate standing beside the named schemes. `None` when
    /// the axis is off, nothing ranked, or the search itself failed.
    pub searched: Option<SearchedSchedule>,
}

impl Tuning {
    /// The winning candidate (None if nothing fits).
    pub fn best(&self) -> Option<&Candidate> {
        self.ranked.first()
    }

    /// The memory rejections, as `(plan, highest peak bytes)` — the shape
    /// of the pre-`Rejection` API, kept for convenience.
    pub fn rejected_oom(&self) -> impl Iterator<Item = (&ParallelPlan, u64)> {
        self.rejected.iter().filter_map(|r| match r {
            Rejection::Oom { plan, peak_bytes, .. } => Some((plan, *peak_bytes)),
            Rejection::InvalidShape { .. } => None,
        })
    }
}

/// Search knobs.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// Methods to consider.
    pub methods: Vec<Method>,
    /// Wave counts searched for Hanayo.
    pub waves: Vec<u32>,
    /// Minimum pipeline width to consider (deep models cannot shrink `P`
    /// below their memory share).
    pub min_pp: u32,
    /// Baseline simulator options.
    pub sim: SimOptions,
    /// Also evaluate every candidate with prefetching disabled (the §4.2
    /// ablation), doubling that slice of the space.
    pub sweep_prefetch: bool,
    /// Additional `recv_lookahead` values to sweep on top of
    /// `sim.recv_lookahead` (duplicates are skipped).
    pub recv_lookaheads: Vec<usize>,
    /// Micro-batch merge factors: factor `m` evaluates the same work as
    /// `m`-fold larger micro-batches (`B/m` micro-batches of `m ×
    /// micro_batch_size` sequences — identical sequences per iteration,
    /// different pipeline granularity). Factors that do not divide a
    /// candidate's micro-batch count are recorded as shape rejections.
    pub micro_batch_merges: Vec<u32>,
    /// Activation-recomputation modes to sweep. Checkpointing trades one
    /// extra forward per backward for a boundary-only stash, so on
    /// memory-constrained clusters plans that are `Rejection::Oom` under
    /// [`Recompute::None`] can come back ranked under [`Recompute::Full`].
    /// Duplicates are skipped; an empty list falls back to `None` only.
    pub recompute_modes: Vec<Recompute>,
    /// Checkpoint intervals (iterations) to sweep. When non-empty, every
    /// feasible plan is expanded into one candidate per interval, each
    /// carrying a [`RecoveryEval`], and the ranking switches from raw
    /// throughput to **goodput under the expected failure rate** (device
    /// MTBF from the cluster, checkpoint stall from the plan's
    /// weights+optimizer bytes over the weakest link). The Young–Daly
    /// optimum falls out of the sweep. Zeros and duplicates are skipped;
    /// empty disables the axis.
    pub checkpoint_intervals: Vec<u32>,
    /// Recovery-model knobs (restart latency, MTBF override) used by the
    /// checkpoint-interval axis.
    pub recovery: RecoveryOptions,
    /// When set, run the tabular schedule-space search seeded from the
    /// winning plan's pipeline shape and attach the result as
    /// [`Tuning::searched`]. Deterministic (seeded), so [`tune`] and
    /// [`tune_serial`] stay byte-identical.
    pub schedule_search: Option<ScheduleSearchOptions>,
    /// Statically reject candidates before simulating: a deadlock-free
    /// happens-before DAG plus the analyzer's exact activation-liveness
    /// replay decide OOM without running the engine, so memory-doomed
    /// plans skip their simulation entirely. The ranking (and every
    /// rejection record) is *byte-identical* with the pre-pass on or off —
    /// the static peak equals the simulated peak exactly — which is why it
    /// defaults to on. Turn it off to benchmark the saving or to force
    /// every candidate through the engine.
    pub static_prune: bool,
    /// Share pure artifacts across the candidates of one sweep: built
    /// schedules, cost tables, static memory replays, lowered
    /// ([`crate::engine::compile_schedule`]) programs, and per-group
    /// simulation reports. A wide sweep ablates sim options and recompute
    /// modes around a handful of distinct pipeline shapes, so most
    /// candidates re-derive artifacts an earlier candidate already built;
    /// batching builds each exactly once. Every shared value is a pure
    /// function of its cache key, so the ranking and every rejection
    /// record stay *byte-identical* with batching on or off (a test pins
    /// this, parallel and serial). Defaults to on; turn off to benchmark
    /// the saving or to force per-candidate lowering.
    pub batched: bool,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            methods: vec![Method::GPipe, Method::Dapple, Method::ChimeraWave],
            waves: vec![1, 2, 4, 8],
            min_pp: 2,
            sim: SimOptions::default(),
            sweep_prefetch: false,
            recv_lookaheads: Vec::new(),
            micro_batch_merges: vec![1],
            recompute_modes: vec![Recompute::None],
            checkpoint_intervals: Vec::new(),
            recovery: RecoveryOptions::default(),
            schedule_search: None,
            static_prune: true,
            batched: true,
        }
    }
}

impl TuneOptions {
    /// The widest built-in space: prefetch ablation, lookaheads {1, 2, 4},
    /// micro-batch merge factors {1, 2}, both recomputation modes.
    pub fn wide(self) -> TuneOptions {
        TuneOptions {
            sweep_prefetch: true,
            recv_lookaheads: vec![1, 2, 4],
            micro_batch_merges: vec![1, 2],
            recompute_modes: Recompute::ALL.to_vec(),
            ..self
        }
    }

    /// The checkpoint intervals this search actually sweeps: zeros
    /// dropped (an interval is at least one iteration), duplicates
    /// skipped, first-seen order. Empty means the recovery axis is off.
    pub fn checkpoint_interval_variants(&self) -> Vec<u32> {
        let mut intervals = Vec::new();
        for &k in &self.checkpoint_intervals {
            if k > 0 && !intervals.contains(&k) {
                intervals.push(k);
            }
        }
        intervals
    }

    /// The recompute modes this search actually sweeps: deduplicated in
    /// first-seen order, with an empty configuration degrading to `None`
    /// only. Public so reporting layers (e.g. the `sweep` binary) can
    /// echo the real axis rather than the raw configured list.
    pub fn recompute_variants(&self) -> Vec<Recompute> {
        let mut modes = Vec::new();
        for &m in &self.recompute_modes {
            if !modes.contains(&m) {
                modes.push(m);
            }
        }
        if modes.is_empty() {
            modes.push(Recompute::None);
        }
        modes
    }

    /// The simulator-option variants this search sweeps, deduplicated, in
    /// deterministic order. `recv_lookahead` is meaningless without
    /// prefetching, so prefetch-off variants are normalised to the base
    /// lookahead — behaviourally identical candidates collapse to one.
    fn sim_variants(&self) -> Vec<SimOptions> {
        let mut variants: Vec<SimOptions> = Vec::new();
        let push = |v: SimOptions, variants: &mut Vec<SimOptions>| {
            let v = if v.prefetch {
                v
            } else {
                SimOptions { recv_lookahead: self.sim.recv_lookahead, ..v }
            };
            if !variants.contains(&v) {
                variants.push(v);
            }
        };
        push(self.sim, &mut variants);
        for &la in &self.recv_lookaheads {
            push(SimOptions { recv_lookahead: la, ..self.sim }, &mut variants);
        }
        if self.sweep_prefetch {
            push(SimOptions { prefetch: false, ..self.sim }, &mut variants);
        }
        variants
    }
}

/// A fully deterministic total order on candidates, used to break
/// throughput ties so the ranking never depends on enumeration order.
fn plan_key(plan: &ParallelPlan, sim: &SimOptions) -> impl Ord {
    let method = match plan.method {
        Method::GPipe => (0u32, 0u32),
        Method::Dapple => (1, 0),
        Method::ChimeraWave => (2, 0),
        Method::ChimeraNative => (3, 0),
        Method::Hanayo { waves } => (4, waves),
    };
    (
        plan.pp,
        plan.dp,
        method,
        plan.micro_batches,
        plan.micro_batch_size,
        matches!(plan.recompute, Recompute::Full),
        !sim.prefetch,
        sim.recv_lookahead,
    )
}

/// Enumerate the candidate space in deterministic order: `(P, D)`
/// factorisations × micro-batch merges × methods × recompute modes ×
/// simulator variants.
fn candidate_space(
    cluster_devices: u32,
    global_micro_batches: u32,
    micro_batch_size: u32,
    opts: &TuneOptions,
) -> Vec<(ParallelPlan, SimOptions, Option<String>)> {
    let mut methods = opts.methods.clone();
    methods.extend(opts.waves.iter().map(|&w| Method::Hanayo { waves: w }));
    let variants = opts.sim_variants();
    let modes = opts.recompute_variants();

    let mut out = Vec::new();
    for pp in (opts.min_pp..=cluster_devices).filter(|pp| cluster_devices.is_multiple_of(*pp)) {
        let dp = cluster_devices / pp;
        if !global_micro_batches.is_multiple_of(dp) {
            // A genuine strategy that cannot run: recorded (once per
            // method × simulator variant), not silently skipped, so the
            // sweep output explains the whole space.
            let reason = format!("global batch {global_micro_batches} not divisible by D={dp}");
            for &method in &methods {
                for &recompute in &modes {
                    for &sim in &variants {
                        out.push((
                            ParallelPlan {
                                method,
                                dp,
                                pp,
                                micro_batches: global_micro_batches,
                                micro_batch_size,
                                recompute,
                            },
                            sim,
                            Some(reason.clone()),
                        ));
                    }
                }
            }
            continue;
        }
        let per_group = global_micro_batches / dp;
        // A merge factor that does not divide the per-group batch names a
        // granularity that does not exist for this factorisation — there
        // is no candidate to reject, so it is skipped (duplicate and zero
        // factors likewise).
        let mut seen = Vec::new();
        for &merge in &opts.micro_batch_merges {
            if merge == 0 || !per_group.is_multiple_of(merge) || seen.contains(&merge) {
                continue;
            }
            seen.push(merge);
            for &method in &methods {
                for &recompute in &modes {
                    for &sim in &variants {
                        out.push((
                            ParallelPlan {
                                method,
                                dp,
                                pp,
                                micro_batches: per_group / merge,
                                micro_batch_size: micro_batch_size * merge,
                                recompute,
                            },
                            sim,
                            None,
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Price one feasible plan at one checkpoint interval — the single place
/// that decides what a checkpoint drains (the plan's largest per-device
/// weights+optimizer payload, over the cluster's weakest link) and how
/// failures arrive (fleet MTBF over the plan's devices). The tuner's
/// interval axis, the `ckpt` binary's goodput table and the golden
/// goodput snapshots all go through here.
pub fn plan_recovery_eval(
    result: &PlanResult,
    cluster: &ClusterSpec,
    interval: u32,
    opts: &RecoveryOptions,
) -> RecoveryEval {
    let state_bytes = result.group_report.weight_mem.iter().copied().max().unwrap_or(0);
    let devices = result.plan.dp * result.plan.pp;
    let seq_per_iter = result.throughput * result.iteration_time;
    recovery::evaluate(
        result.iteration_time,
        seq_per_iter,
        state_bytes,
        devices,
        cluster.weakest_link(),
        cluster.device_mtbf_s,
        interval,
        opts,
    )
}

/// Expand one feasible plan across the checkpoint-interval axis: one
/// candidate per interval, each priced by [`plan_recovery_eval`]. The
/// last interval takes the base by move, so `n` intervals cost `n - 1`
/// clones of the (span-heavy) plan result rather than `n`.
fn recovery_candidates(
    base: Candidate,
    intervals: &[u32],
    cluster: &ClusterSpec,
    opts: &TuneOptions,
) -> Vec<Candidate> {
    let evals: Vec<RecoveryEval> = intervals
        .iter()
        .map(|&k| plan_recovery_eval(&base.result, cluster, k, &opts.recovery))
        .collect();
    let mut out = Vec::with_capacity(evals.len());
    let mut remaining = evals.into_iter().peekable();
    while let Some(eval) = remaining.next() {
        if remaining.peek().is_some() {
            out.push(Candidate { recovery: Some(eval), ..base.clone() });
        } else {
            out.push(Candidate { recovery: Some(eval), ..base });
            break;
        }
    }
    out
}

/// One candidate's evaluation outcome: a simulated result, a statically
/// proven OOM (carrying the finished [`Rejection`] — no simulation ran),
/// or a shape-level failure.
enum Outcome {
    Simulated(PlanResult),
    StaticOom(Rejection),
    Shape(String),
}

/// Memoized deadlock verdicts for one sweep, keyed by the schedule's
/// shape `(scheme, pp_eff, b_eff)` — the only inputs schedule lowering
/// takes. The wide sweep ablates sim options, micro-batch sizes and
/// recompute modes, none of which change the schedule, so dozens of
/// candidates share one happens-before DAG. The verdict is a pure
/// function of the key, so memoization cannot perturb the (byte-identical)
/// ranking regardless of worker interleaving.
type DeadlockCache = Mutex<HashMap<(Scheme, u32, u32), bool>>;

/// What the static pre-pass decided about one plan.
enum StaticVerdict {
    /// Statically proven OOM on a deadlock-free schedule: skip the
    /// simulation and record this rejection.
    Reject(Rejection),
    /// Every static check passed. The built schedule and cost table are
    /// handed to [`evaluate_resolved_with`] so a surviving plan is not
    /// re-lowered from scratch — `shape` is `(pp_eff, dp_eff, b_eff)`;
    /// the cache keys travel along so the simulation stage can reach the
    /// sweep-wide lowering and report caches.
    Pass {
        shape: (u32, u32, u32),
        schedule_key: SchedKey,
        cost_key: CostKey,
        schedule: Arc<Schedule>,
        cost: Arc<CostTable>,
    },
    /// Some pre-simulation step failed; the normal [`evaluate_plan`] path
    /// re-runs it and produces the identical error record.
    Undecided,
}

/// The tuner's static pre-pass: decide `Rejection::Oom` without
/// simulating. Replicates [`evaluate_plan`]'s pre-simulation steps
/// exactly; if *any* of them fails, returns `Undecided` so the normal
/// path produces the identical error record. A prune fires only when the
/// analyzer also proves the schedule deadlock-free (so the simulation it
/// skips would have completed and reported exactly these peaks — the
/// analyzer's static replay is exact, not just a bound) and some device's
/// peak exceeds its capacity. One deadlock check covers every
/// data-parallel group: the verdict is timing-independent and all groups
/// run the same schedule.
fn static_verdict(
    model: &ModelConfig,
    cluster: &ClusterSpec,
    plan: &ParallelPlan,
    sim: SimOptions,
    dl_cache: &DeadlockCache,
    caches: Option<&SweepCaches>,
) -> StaticVerdict {
    let needed = plan.dp * plan.pp;
    if needed as usize > cluster.len() {
        return StaticVerdict::Undecided;
    }
    let Ok((scheme, pp_eff, dp_mult, b_eff)) = resolve(plan.method, plan.pp, plan.micro_batches)
    else {
        return StaticVerdict::Undecided;
    };
    let dp_eff = plan.dp * dp_mult;
    let Ok(cfg) = PipelineConfig::new(pp_eff, b_eff, scheme) else {
        return StaticVerdict::Undecided;
    };
    let schedule_key: SchedKey = (scheme, pp_eff, b_eff);
    let schedule = match caches {
        Some(c) => match c.schedule_for(schedule_key, &cfg) {
            Some(s) => s,
            None => return StaticVerdict::Undecided,
        },
        None => match build_schedule(&cfg) {
            Ok(s) => Arc::new(s),
            Err(_) => return StaticVerdict::Undecided,
        },
    };
    let cost_key: CostKey = (cfg.stages(), plan.micro_batch_size, plan.recompute);
    let cost = match caches {
        Some(c) => c.cost_for(cost_key, model),
        None => Arc::new(CostTable::build_with(
            model,
            cfg.stages(),
            plan.micro_batch_size,
            plan.recompute,
        )),
    };
    if validate_numerics(&cost, cluster, &sim).is_err() {
        return StaticVerdict::Undecided;
    }

    // Exact static replay of the engine's per-device memory accounting,
    // broadcast over the groups the way evaluate_plan merges group
    // reports (memory is schedule-order-determined, so every group peaks
    // identically; devices outside the plan stay at zero).
    let group_peak = match caches {
        Some(c) => c.peaks_for((schedule_key, cost_key), &schedule, &cost),
        None => Arc::new(static_peak_mem(&schedule, &cost)),
    };
    let mut peak_mem = vec![0u64; cluster.len()];
    for g in 0..dp_eff as usize {
        for (r, &peak) in group_peak.iter().enumerate().take(pp_eff as usize) {
            peak_mem[g * pp_eff as usize + r] = peak;
        }
    }
    let oom_devices: Vec<usize> =
        (0..cluster.len()).filter(|&d| peak_mem[d] > cluster.memory(d)).collect();
    if oom_devices.is_empty() {
        return StaticVerdict::Pass {
            shape: (pp_eff, dp_eff, b_eff),
            schedule_key,
            cost_key,
            schedule,
            cost,
        };
    }
    // Only now pay for the happens-before DAG: a prune fires only when
    // the analyzer also proves the schedule deadlock-free, so the
    // simulation it skips would have reported exactly these peaks rather
    // than a deadlock. Plans that fit in memory skip the DAG entirely —
    // they are heading into the engine anyway — and candidates sharing a
    // schedule shape share one memoized verdict. A poisoned cache lock
    // degrades to recomputing, never to a wrong verdict.
    let key = (scheme, pp_eff, b_eff);
    let deadlock_free = match caches {
        // Batched sweeps park the verdict in the shared caches, where a
        // resident service can reuse it across requests.
        Some(c) => c.deadlock_free(key, &schedule),
        None => {
            let cached = dl_cache.lock().ok().and_then(|m| m.get(&key).copied());
            match cached {
                Some(v) => v,
                None => {
                    let v = check_deadlock_free(&schedule).is_ok();
                    if let Ok(mut m) = dl_cache.lock() {
                        m.insert(key, v);
                    }
                    v
                }
            }
        }
    };
    if !deadlock_free {
        return StaticVerdict::Undecided;
    }
    let (worst, peak) =
        oom_devices.iter().map(|&d| (d, peak_mem[d])).max_by_key(|&(_, m)| m).unwrap_or((0, 0));
    StaticVerdict::Reject(Rejection::Oom {
        plan: *plan,
        sim,
        peak_bytes: peak,
        capacity_bytes: cluster.memory(worst),
        devices: oom_devices,
    })
}

fn assemble(
    evaluated: Vec<(ParallelPlan, SimOptions, Outcome)>,
    cluster: &ClusterSpec,
    opts: &TuneOptions,
) -> Tuning {
    let intervals = opts.checkpoint_interval_variants();
    let mut ranked = Vec::new();
    let mut rejected = Vec::new();
    for (plan, sim, outcome) in evaluated {
        match outcome {
            Outcome::StaticOom(rejection) => rejected.push(rejection),
            Outcome::Simulated(result) if result.is_oom() => {
                // Report the worst of the devices that actually overflowed
                // (on heterogeneous-memory clusters the globally highest
                // peak can live on a device that fits).
                let (worst, peak) = result
                    .oom_devices
                    .iter()
                    .map(|&d| (d, result.peak_mem[d]))
                    .max_by_key(|&(_, m)| m)
                    .unwrap_or((0, 0));
                rejected.push(Rejection::Oom {
                    plan,
                    sim,
                    peak_bytes: peak,
                    capacity_bytes: cluster.memory(worst),
                    devices: result.oom_devices.clone(),
                });
            }
            Outcome::Simulated(result) => {
                let base = Candidate { plan, sim, result, recovery: None };
                if intervals.is_empty() {
                    ranked.push(base);
                } else {
                    ranked.extend(recovery_candidates(base, &intervals, cluster, opts));
                }
            }
            Outcome::Shape(reason) => rejected.push(Rejection::InvalidShape { plan, sim, reason }),
        }
    }
    ranked.sort_by(|a, b| {
        // Goodput when the recovery axis is active, raw throughput
        // otherwise; plan shape then interval break ties, so the order is
        // fully deterministic either way.
        b.ranking_metric()
            .total_cmp(&a.ranking_metric())
            .then_with(|| plan_key(&a.plan, &a.sim).cmp(&plan_key(&b.plan, &b.sim)))
            .then_with(|| {
                let interval = |c: &Candidate| c.recovery.map(|r| r.interval_iterations);
                interval(a).cmp(&interval(b))
            })
    });
    Tuning { ranked, rejected, searched: None }
}

/// Run the schedule-space search seeded from the winning plan's pipeline
/// shape and attach it to the tuning. Shared verbatim by [`tune`] and
/// [`tune_serial`]; the search is a pure function of its seed, so the two
/// paths stay byte-identical.
fn attach_schedule_search(
    mut tuning: Tuning,
    model: &ModelConfig,
    cluster: &ClusterSpec,
    opts: &TuneOptions,
) -> Tuning {
    let Some(search_opts) = opts.schedule_search else { return tuning };
    let Some(best) = tuning.best() else { return tuning };
    let Ok((_, pp_eff, _, b_eff)) =
        crate::plan::resolve(best.plan.method, best.plan.pp, best.plan.micro_batches)
    else {
        return tuning;
    };
    // The search runs at the winner's effective pipeline shape, on its
    // first group's device slice.
    let devices: Vec<usize> = (0..pp_eff as usize).collect();
    let sub = cluster.select(&devices);
    tuning.searched = search_schedule(
        model,
        &sub,
        pp_eff,
        b_eff,
        best.plan.micro_batch_size,
        best.plan.recompute,
        best.sim,
        &search_opts,
    )
    .ok();
    tuning
}

/// Classify and count one candidate verdict. The `outcome` label is the
/// assemble-stage fate: `ranked`, `oom` (simulated or statically proven),
/// or `shape` (plan-level rejection).
fn record_candidate(outcome: &Outcome) {
    if !hanayo_metrics::enabled() {
        return;
    }
    let label = match outcome {
        Outcome::Simulated(result) if result.is_oom() => "oom",
        Outcome::Simulated(_) => "ranked",
        Outcome::StaticOom(_) => "oom",
        Outcome::Shape(_) => "shape",
    };
    hanayo_metrics::counter_add("hanayo_tuner_candidates_total", &[("outcome", label)], 1);
    if matches!(outcome, Outcome::StaticOom(_)) {
        hanayo_metrics::counter_add("hanayo_tuner_static_prunes_total", &[], 1);
    }
}

fn evaluate_candidate(
    model: &ModelConfig,
    cluster: &ClusterSpec,
    opts: &TuneOptions,
    dl_cache: &DeadlockCache,
    caches: Option<&SweepCaches>,
    cand: &(ParallelPlan, SimOptions, Option<String>),
) -> (ParallelPlan, SimOptions, Outcome) {
    let verdict = evaluate_candidate_inner(model, cluster, opts, dl_cache, caches, cand);
    record_candidate(&verdict.2);
    verdict
}

fn evaluate_candidate_inner(
    model: &ModelConfig,
    cluster: &ClusterSpec,
    opts: &TuneOptions,
    dl_cache: &DeadlockCache,
    caches: Option<&SweepCaches>,
    (plan, sim, shape_reason): &(ParallelPlan, SimOptions, Option<String>),
) -> (ParallelPlan, SimOptions, Outcome) {
    if let Some(reason) = shape_reason {
        return (*plan, *sim, Outcome::Shape(reason.clone()));
    }
    if opts.static_prune {
        match static_verdict(model, cluster, plan, *sim, dl_cache, caches) {
            StaticVerdict::Reject(rejection) => {
                return (*plan, *sim, Outcome::StaticOom(rejection));
            }
            StaticVerdict::Pass { shape, schedule_key, cost_key, schedule, cost } => {
                let compiled = caches.map(|c| c.compiled_for(schedule_key, &schedule, sim));
                let reuse = SimReuse {
                    compiled: compiled.as_ref().map(|(c, _)| &**c),
                    memo: caches.and_then(|c| {
                        let content_id = compiled.as_ref().map_or(u32::MAX, |(_, id)| *id);
                        c.report_id(schedule_key, cost_key, sim, content_id)
                            .map(|id| (&c.reports, id))
                    }),
                    dedup_groups: caches.is_some(),
                };
                let outcome = match evaluate_resolved_with(
                    plan, cluster, *sim, shape, &schedule, &cost, reuse,
                ) {
                    Ok(result) => Outcome::Simulated(result),
                    Err(e) => Outcome::Shape(e.to_string()),
                };
                return (*plan, *sim, outcome);
            }
            StaticVerdict::Undecided => {}
        }
    }
    let outcome = match evaluate_plan(plan, model, cluster, *sim) {
        Ok(result) => Outcome::Simulated(result),
        Err(e) => Outcome::Shape(e.to_string()),
    };
    (*plan, *sim, outcome)
}

/// Live progress of one sweep, shared with whoever is watching it — the
/// planning service's job monitor endpoint reads these counters while the
/// sweep runs on a worker thread.
#[derive(Debug, Default)]
pub struct TuneProgress {
    evaluated: AtomicU64,
    total: AtomicU64,
}

impl TuneProgress {
    /// Candidates evaluated so far.
    pub fn evaluated(&self) -> u64 {
        self.evaluated.load(Ordering::SeqCst)
    }

    /// Total candidates in the sweep's space (0 until the space has been
    /// enumerated).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::SeqCst)
    }
}

/// Caller-supplied hooks for a long-running sweep: shared artifact
/// caches, cooperative cancellation, and live progress. The default
/// context reproduces the plain [`tune`] behaviour exactly.
#[derive(Clone, Default)]
pub struct TuneContext {
    /// Artifact caches shared *across* sweeps. `None` gives each sweep
    /// its own caches (when [`TuneOptions::batched`] is on). **Sharing
    /// contract:** the cache keys assume one model and one cluster — a
    /// resident service must key its shared handles by the `(model,
    /// cluster)` configuration. Ignored when `batched` is off.
    pub caches: Option<Arc<SweepCaches>>,
    /// Cooperative cancellation: checked between candidate batches; a
    /// tripped flag makes the sweep return [`TuneError::Cancelled`]
    /// instead of running to completion after its client is gone.
    pub abort: Option<Arc<AbortFlag>>,
    /// Live progress counters, updated once per candidate batch.
    pub progress: Option<Arc<TuneProgress>>,
    /// Candidates per batch between abort checkpoints; `0` means the
    /// default (32). Chunking never reorders evaluation, so results are
    /// byte-identical for every batch size.
    pub checkpoint_every: usize,
}

/// Default candidates per batch between cancellation checkpoints: small
/// enough that a cancel lands within tens of milliseconds on typical
/// spaces, large enough that parallel batches keep every worker busy.
const DEFAULT_CHECKPOINT_EVERY: usize = 32;

/// Why a context-driven sweep stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneError {
    /// The context's [`AbortFlag`] tripped at a candidate-batch
    /// checkpoint; the sweep stopped without ranking.
    Cancelled {
        /// Candidates already evaluated when the flag was observed.
        evaluated: usize,
        /// Total candidates the sweep would have evaluated.
        total: usize,
    },
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::Cancelled { evaluated, total } => {
                write!(f, "sweep cancelled after {evaluated}/{total} candidates")
            }
        }
    }
}

impl std::error::Error for TuneError {}

/// The shared sweep driver behind all four public entry points: enumerate
/// the space, evaluate it in candidate batches (parallel within a batch
/// when `parallel`, strictly in order otherwise — either way results are
/// collected in candidate order, so every configuration is byte-identical),
/// honour the context's abort flag between batches, and assemble the
/// ranking.
fn tune_impl(
    model: &ModelConfig,
    cluster: &ClusterSpec,
    global_micro_batches: u32,
    micro_batch_size: u32,
    opts: &TuneOptions,
    ctx: &TuneContext,
    parallel: bool,
) -> Result<Tuning, TuneError> {
    let space = candidate_space(cluster.len() as u32, global_micro_batches, micro_batch_size, opts);
    let dl_cache = DeadlockCache::default();
    // Shared caches only apply to batched sweeps (they hold exactly the
    // cross-candidate artifacts batching shares); an unbatched sweep
    // ignores a supplied handle rather than silently turning batching on.
    let owned = (opts.batched && ctx.caches.is_none()).then(SweepCaches::default);
    let caches: Option<&SweepCaches> =
        if opts.batched { ctx.caches.as_deref().or(owned.as_ref()) } else { None };
    if let Some(p) = &ctx.progress {
        p.total.store(space.len() as u64, Ordering::SeqCst);
        p.evaluated.store(0, Ordering::SeqCst);
    }
    let step =
        if ctx.checkpoint_every > 0 { ctx.checkpoint_every } else { DEFAULT_CHECKPOINT_EVERY };
    // Inert off a TTY (one atomic add per candidate, no clock reads), so
    // tests and CI see exactly the non-interactive path.
    let progress = hanayo_metrics::Progress::new("sweep", space.len() as u64);
    let mut evaluated: Vec<(ParallelPlan, SimOptions, Outcome)> = Vec::with_capacity(space.len());
    for batch in space.chunks(step) {
        if ctx.abort.as_ref().is_some_and(|a| a.is_tripped()) {
            progress.finish();
            return Err(TuneError::Cancelled { evaluated: evaluated.len(), total: space.len() });
        }
        if parallel {
            let outcomes: Vec<_> = batch
                .par_iter()
                .map(|cand| {
                    let out = evaluate_candidate(model, cluster, opts, &dl_cache, caches, cand);
                    progress.tick();
                    out
                })
                .collect();
            evaluated.extend(outcomes);
        } else {
            evaluated.extend(batch.iter().map(|cand| {
                let out = evaluate_candidate(model, cluster, opts, &dl_cache, caches, cand);
                progress.tick();
                out
            }));
        }
        if let Some(p) = &ctx.progress {
            p.evaluated.store(evaluated.len() as u64, Ordering::SeqCst);
        }
    }
    progress.finish();
    Ok(attach_schedule_search(assemble(evaluated, cluster, opts), model, cluster, opts))
}

/// Sweep the strategy space and rank feasible plans by throughput,
/// evaluating candidates in parallel. The ranking is byte-identical to
/// [`tune_serial`] — see the module docs.
///
/// `global_micro_batches` is the batch per iteration across the whole
/// cluster; each candidate splits it evenly over its data-parallel groups
/// (plans whose `D` does not divide it are recorded as shape rejections).
pub fn tune(
    model: &ModelConfig,
    cluster: &ClusterSpec,
    global_micro_batches: u32,
    micro_batch_size: u32,
    opts: &TuneOptions,
) -> Tuning {
    let ctx = TuneContext::default();
    match tune_impl(model, cluster, global_micro_batches, micro_batch_size, opts, &ctx, true) {
        Ok(t) => t,
        // Unreachable: cancellation needs an abort flag and the default
        // context carries none. An empty tuning is the safe fallback.
        Err(TuneError::Cancelled { .. }) => {
            Tuning { ranked: Vec::new(), rejected: Vec::new(), searched: None }
        }
    }
}

/// [`tune`] with caller-supplied hooks: shared caches, cooperative
/// cancellation, live progress. Byte-identical to [`tune`] whenever it
/// runs to completion — the context changes *when* a sweep may stop and
/// *where* artifacts live, never what it computes.
pub fn tune_with(
    model: &ModelConfig,
    cluster: &ClusterSpec,
    global_micro_batches: u32,
    micro_batch_size: u32,
    opts: &TuneOptions,
    ctx: &TuneContext,
) -> Result<Tuning, TuneError> {
    tune_impl(model, cluster, global_micro_batches, micro_batch_size, opts, ctx, true)
}

/// The serial reference for [`tune`]: identical candidate space, identical
/// ranking, one candidate at a time. Exists so tests (and sceptical users)
/// can verify that parallel evaluation never changes the answer.
pub fn tune_serial(
    model: &ModelConfig,
    cluster: &ClusterSpec,
    global_micro_batches: u32,
    micro_batch_size: u32,
    opts: &TuneOptions,
) -> Tuning {
    let ctx = TuneContext::default();
    match tune_impl(model, cluster, global_micro_batches, micro_batch_size, opts, &ctx, false) {
        Ok(t) => t,
        // Unreachable — see tune().
        Err(TuneError::Cancelled { .. }) => {
            Tuning { ranked: Vec::new(), rejected: Vec::new(), searched: None }
        }
    }
}

/// [`tune_serial`] with caller-supplied hooks — see [`tune_with`].
pub fn tune_serial_with(
    model: &ModelConfig,
    cluster: &ClusterSpec,
    global_micro_batches: u32,
    micro_batch_size: u32,
    opts: &TuneOptions,
    ctx: &TuneContext,
) -> Result<Tuning, TuneError> {
    tune_impl(model, cluster, global_micro_batches, micro_batch_size, opts, ctx, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanayo_cluster::topology::{fc_full_nvlink, lonestar6};

    fn opts() -> TuneOptions {
        TuneOptions { waves: vec![1, 2, 4], min_pp: 4, ..Default::default() }
    }

    #[test]
    fn tuner_finds_a_feasible_plan() {
        let model = ModelConfig::bert64().with_train_bytes_per_param(8);
        let t = tune(&model, &fc_full_nvlink(8), 8, 1, &opts());
        let best = t.best().expect("something fits an 80GB box");
        assert!(best.result.throughput > 0.0);
    }

    #[test]
    fn best_plan_is_a_wave_schedule() {
        // On a healthy interconnect the tuner must pick Hanayo.
        let model = ModelConfig::bert64().with_train_bytes_per_param(8);
        let t = tune(&model, &fc_full_nvlink(8), 8, 1, &opts());
        let best = t.best().unwrap();
        assert!(
            matches!(best.plan.method, Method::Hanayo { .. }),
            "tuner chose {:?}",
            best.plan.method
        );
    }

    #[test]
    fn ranking_is_sorted_by_throughput() {
        let model = ModelConfig::gpt128().with_train_bytes_per_param(8);
        let t = tune(&model, &lonestar6(8), 8, 1, &opts());
        for pair in t.ranked.windows(2) {
            assert!(pair[0].result.throughput >= pair[1].result.throughput);
        }
    }

    #[test]
    fn oom_plans_are_reported_not_ranked() {
        // Full-Adam BERT on 40 GB cards with a deep micro-batch: some plans
        // must be rejected for memory and carry their peak.
        let model = ModelConfig::bert64();
        let t = tune(&model, &lonestar6(8), 16, 4, &opts());
        assert!(t.rejected.iter().any(Rejection::is_oom), "expected OOM rejections");
        for (_, peak) in t.rejected_oom() {
            assert!(peak > 38_000_000_000);
        }
        for r in &t.rejected {
            if let Rejection::Oom { peak_bytes, capacity_bytes, devices, .. } = r {
                assert!(peak_bytes > capacity_bytes);
                assert!(!devices.is_empty());
            }
        }
        for c in &t.ranked {
            assert!(!c.result.is_oom());
        }
    }

    #[test]
    fn static_prune_is_byte_identical_and_catches_every_oom() {
        // The OOM-heavy scenario from oom_plans_are_reported_not_ranked,
        // swept wide: with the static pre-pass every memory rejection is
        // decided without simulating, and the entire tuning — ranking,
        // rejection records, order — is byte-identical to the unpruned
        // run.
        let model = ModelConfig::bert64();
        let cluster = lonestar6(8);
        let wide = opts().wide();
        let pruned = tune(&model, &cluster, 16, 4, &wide);
        let unpruned =
            tune(&model, &cluster, 16, 4, &TuneOptions { static_prune: false, ..wide.clone() });
        assert_eq!(pruned, unpruned);
        let ooms = pruned.rejected.iter().filter(|r| r.is_oom()).count();
        assert!(ooms > 0, "scenario must actually exercise the memory axis");
        // And the pre-pass alone reproduces each recorded rejection.
        for r in &pruned.rejected {
            if let Rejection::Oom { plan, sim, .. } = r {
                let StaticVerdict::Reject(statically) =
                    static_verdict(&model, &cluster, plan, *sim, &DeadlockCache::default(), None)
                else {
                    panic!("every simulated OOM must be statically decidable");
                };
                assert_eq!(&statically, r);
            }
        }
    }

    #[test]
    fn indivisible_batches_are_rejected_with_reasons_not_crashed() {
        let model = ModelConfig::gpt128().with_train_bytes_per_param(8);
        // 7 micro-batches over 8 devices: only D=1 factorisations apply.
        let t = tune(&model, &fc_full_nvlink(8), 7, 1, &opts());
        for c in &t.ranked {
            assert_eq!(c.plan.dp, 1);
        }
        // The D=2 slice of the space is recorded as shape rejections.
        assert!(
            t.rejected.iter().any(|r| !r.is_oom() && r.plan().dp == 2),
            "{:?}",
            t.rejected.len()
        );
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let model = ModelConfig::bert64().with_train_bytes_per_param(8);
        let cluster = lonestar6(8);
        let wide = opts().wide();
        let par = tune(&model, &cluster, 16, 1, &wide);
        let ser = tune_serial(&model, &cluster, 16, 1, &wide);
        assert_eq!(par, ser);
    }

    #[test]
    fn batched_sweep_is_byte_identical_to_per_candidate() {
        // The batched path shares built schedules, cost tables, static
        // memory replays, engine lowerings and pipeline-group reports
        // across the whole sweep. Every shared artifact is a pure
        // function of its cache key, so the complete tuning — ranking,
        // rejections, order — must match the per-candidate path byte for
        // byte, under both parallel and serial evaluation.
        let model = ModelConfig::bert64().with_train_bytes_per_param(8);
        let cluster = lonestar6(8);
        let wide = opts().wide();
        let batched = tune(&model, &cluster, 16, 1, &wide);
        let per_candidate =
            tune(&model, &cluster, 16, 1, &TuneOptions { batched: false, ..wide.clone() });
        assert_eq!(batched, per_candidate);
        let serial_batched = tune_serial(&model, &cluster, 16, 1, &wide);
        assert_eq!(batched, serial_batched);
    }

    #[test]
    fn wide_space_contains_ablations_and_merges() {
        let model = ModelConfig::bert64().with_train_bytes_per_param(8);
        let t = tune(&model, &fc_full_nvlink(8), 16, 1, &opts().wide());
        assert!(t.ranked.iter().any(|c| !c.sim.prefetch), "prefetch ablation missing");
        assert!(t.ranked.iter().any(|c| c.sim.recv_lookahead == 4), "lookahead sweep missing");
        assert!(t.ranked.iter().any(|c| c.plan.micro_batch_size == 2), "micro-batch merge missing");
        assert!(
            t.ranked.iter().any(|c| c.plan.recompute == Recompute::Full),
            "recompute axis missing"
        );
        // Merged candidates process the same sequences per iteration.
        for c in &t.ranked {
            assert_eq!(c.plan.dp * c.plan.micro_batches * c.plan.micro_batch_size, 16);
        }
    }

    #[test]
    fn recompute_variants_dedupe_and_never_go_empty() {
        // The capacity-rescue scenario itself lives in
        // tests/tuner_props.rs (capacity_constrained_cluster_is_rescued_
        // by_the_recompute_axis); here we pin the axis normalisation.
        let opts = TuneOptions {
            recompute_modes: vec![Recompute::Full, Recompute::Full, Recompute::None],
            ..Default::default()
        };
        assert_eq!(opts.recompute_variants(), vec![Recompute::Full, Recompute::None]);
        let empty = TuneOptions { recompute_modes: Vec::new(), ..Default::default() };
        assert_eq!(empty.recompute_variants(), vec![Recompute::None]);
    }

    #[test]
    fn checkpoint_interval_axis_expands_and_ranks_by_goodput() {
        let model = ModelConfig::bert64().with_train_bytes_per_param(8);
        let mut cluster = fc_full_nvlink(8);
        // A short-MTBF what-if cluster so the failure term actually bites.
        cluster.device_mtbf_s = 40_000.0;
        let base = TuneOptions { waves: vec![2], min_pp: 8, ..Default::default() };
        let plain = tune(&model, &cluster, 8, 1, &base);
        let with_axis = tune(
            &model,
            &cluster,
            8,
            1,
            &TuneOptions { checkpoint_intervals: vec![4, 0, 16, 4], ..base },
        );
        // Dedup dropped the 0 and the duplicate: 2 intervals per plan.
        assert_eq!(with_axis.ranked.len(), 2 * plain.ranked.len());
        for c in &with_axis.ranked {
            let r = c.recovery.expect("the axis annotates every candidate");
            assert!(r.goodput_seq_per_s < c.result.throughput, "goodput must cost something");
            assert!(r.efficiency > 0.0 && r.efficiency < 1.0);
            assert_eq!(c.ranking_metric(), r.goodput_seq_per_s);
        }
        // Ranked by goodput, deterministically.
        for pair in with_axis.ranked.windows(2) {
            assert!(pair[0].ranking_metric() >= pair[1].ranking_metric());
        }
        // Plain searches carry no recovery annotation.
        assert!(plain.ranked.iter().all(|c| c.recovery.is_none()));
    }

    #[test]
    fn best_interval_matches_young_daly_closed_form() {
        use hanayo_ckpt::recovery::young_daly_interval_s;
        // Uniform-cost micro-model: one method, one factorisation, a dense
        // interval grid. The sweep's winning interval must agree with the
        // closed form within one grid step (documented tolerance: the
        // optimum in iterations is fractional; the sweep is integral).
        let model = ModelConfig::bert64().with_train_bytes_per_param(8);
        let mut cluster = fc_full_nvlink(8);
        cluster.device_mtbf_s = 40_000.0;
        let opts = TuneOptions {
            methods: vec![Method::Dapple],
            waves: Vec::new(),
            min_pp: 8,
            checkpoint_intervals: (1..=400).collect(),
            ..Default::default()
        };
        let t = tune(&model, &cluster, 8, 1, &opts);
        let best = t.best().expect("one plan, many intervals");
        let r = best.recovery.unwrap();
        let star_s = young_daly_interval_s(r.checkpoint_write_s, r.cluster_mtbf_s, r.restart_s);
        let star_k = star_s / best.result.iteration_time;
        assert!(
            (1.0..=400.0).contains(&star_k),
            "closed-form optimum {star_k} must sit inside the sweep grid"
        );
        assert!(
            (r.interval_iterations as f64 - star_k).abs() <= 1.0,
            "sweep optimum {} vs Young–Daly {star_k}",
            r.interval_iterations
        );
    }

    #[test]
    fn schedule_search_axis_attaches_a_searched_candidate() {
        let model = ModelConfig::bert64().with_train_bytes_per_param(8);
        let cluster = fc_full_nvlink(8);
        let search =
            ScheduleSearchOptions { max_rounds: 6, moves_per_round: 8, ..Default::default() };
        let with = TuneOptions { schedule_search: Some(search), ..opts() };
        let par = tune(&model, &cluster, 8, 1, &with);
        let searched = par.searched.as_ref().expect("axis on + feasible best ⇒ searched");
        // Never worse than its own best named baseline, and internally
        // consistent with the winning plan's shape.
        assert!(searched.iteration_time_s <= searched.baseline_iteration_time_s);
        assert!(!searched.baselines.is_empty());
        // Byte-identical across the parallel and serial paths.
        let ser = tune_serial(&model, &cluster, 8, 1, &with);
        assert_eq!(par, ser);
        // Axis off ⇒ no searched candidate, ranking unchanged.
        let without = tune(&model, &cluster, 8, 1, &opts());
        assert!(without.searched.is_none());
        assert_eq!(without.ranked, par.ranked);
    }

    #[test]
    fn pre_tripped_abort_cancels_before_any_candidate() {
        let model = ModelConfig::bert64().with_train_bytes_per_param(8);
        let abort = Arc::new(AbortFlag::new());
        abort.trip();
        let ctx = TuneContext { abort: Some(abort), ..Default::default() };
        let err = tune_with(&model, &fc_full_nvlink(8), 8, 1, &opts(), &ctx)
            .expect_err("a tripped flag must cancel the sweep");
        let TuneError::Cancelled { evaluated, total } = err;
        assert_eq!(evaluated, 0);
        assert!(total > 0);
    }

    #[test]
    fn abort_between_batches_stops_the_sweep_partway() {
        // A 1-candidate batch size with a flag tripped from a progress
        // watcher: the sweep must stop at a checkpoint, not run dry.
        let model = ModelConfig::bert64().with_train_bytes_per_param(8);
        let cluster = fc_full_nvlink(8);
        let abort = Arc::new(AbortFlag::new());
        let progress = Arc::new(TuneProgress::default());
        let ctx = TuneContext {
            abort: Some(abort.clone()),
            progress: Some(progress.clone()),
            checkpoint_every: 1,
            ..Default::default()
        };
        let watcher = {
            let abort = abort.clone();
            let progress = progress.clone();
            std::thread::spawn(move || {
                while progress.evaluated() < 2 {
                    std::thread::yield_now();
                }
                abort.trip();
            })
        };
        let result = tune_serial_with(&model, &cluster, 16, 1, &opts().wide(), &ctx);
        watcher.join().expect("watcher thread");
        let TuneError::Cancelled { evaluated, total } =
            result.expect_err("the tripped flag must cancel mid-sweep");
        assert!(evaluated >= 2, "cancel observed after the watcher's threshold");
        assert!(evaluated < total, "the sweep must not have run to completion");
        assert_eq!(progress.total(), total as u64);
    }

    #[test]
    fn context_hooks_do_not_change_the_answer() {
        // Shared caches + progress + an (untripped) abort flag + odd batch
        // size: byte-identical to the plain paths, parallel and serial.
        let model = ModelConfig::bert64().with_train_bytes_per_param(8);
        let cluster = lonestar6(8);
        let wide = opts().wide();
        let shared = Arc::new(SweepCaches::default());
        let ctx = TuneContext {
            caches: Some(shared.clone()),
            abort: Some(Arc::new(AbortFlag::new())),
            progress: Some(Arc::new(TuneProgress::default())),
            checkpoint_every: 7,
        };
        let plain = tune(&model, &cluster, 16, 1, &wide);
        let hooked = tune_with(&model, &cluster, 16, 1, &wide, &ctx).expect("untripped");
        assert_eq!(plain, hooked);
        // A second sweep over the now-warm shared caches: still identical.
        let warm = tune_serial_with(&model, &cluster, 16, 1, &wide, &ctx).expect("untripped");
        assert_eq!(plain, warm);
        assert!(shared.entries() > 0, "the shared handle must have been populated");
    }

    #[test]
    fn prefetch_ablation_never_outranks_prefetch_for_same_plan() {
        let model = ModelConfig::bert64().with_train_bytes_per_param(8);
        let t = tune(&model, &lonestar6(8), 8, 1, &TuneOptions { sweep_prefetch: true, ..opts() });
        for on in t.ranked.iter().filter(|c| c.sim.prefetch) {
            if let Some(off) = t.ranked.iter().find(|c| {
                !c.sim.prefetch
                    && c.plan == on.plan
                    && c.sim.recv_lookahead == on.sim.recv_lookahead
            }) {
                assert!(on.result.throughput >= off.result.throughput * (1.0 - 1e-9));
            }
        }
    }
}
