//! Cluster-level parallel plans: `D` data-parallel pipeline groups of `P`
//! devices each, with the flush-time gradient all-reduce.
//!
//! This is also where the paper's Chimera fairness transformation lives:
//! the benchmarked "C" is **Chimera-wave** — a `P`-device Chimera
//! re-interpreted as two data-parallel 1-wave pipelines on `P/2` devices
//! each (Fig. 5), so that every method holds exactly one weight copy.

use crate::engine::{
    try_simulate, try_simulate_compiled, validate_numerics, CompiledSchedule, NumericsError,
    SimError, SimOptions,
};
use crate::report::SimReport;
use hanayo_cluster::collective::ring_allreduce_time;
use hanayo_cluster::ClusterSpec;
use hanayo_core::action::Schedule;
use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::schedule::{build_schedule, ScheduleError};
use hanayo_model::{CostTable, ModelConfig, Recompute};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The methods compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// GPipe ("G").
    GPipe,
    /// DAPPLE 1F1B ("D").
    Dapple,
    /// Chimera-wave ("C") — the paper's fairness form: replicas become
    /// data parallelism.
    ChimeraWave,
    /// Native bidirectional Chimera with 2 weight replicas (Fig. 1/3 only).
    ChimeraNative,
    /// Hanayo with `waves` waves ("H-W").
    Hanayo {
        /// Wave count.
        waves: u32,
    },
}

impl Method {
    /// Figure label (`G`, `D`, `C`, `H-2`, ...).
    pub fn label(self) -> String {
        match self {
            Method::GPipe => "G".into(),
            Method::Dapple => "D".into(),
            Method::ChimeraWave => "C".into(),
            Method::ChimeraNative => "C2".into(),
            Method::Hanayo { waves } => format!("H-{waves}"),
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Method::GPipe => write!(f, "GPipe"),
            Method::Dapple => write!(f, "DAPPLE"),
            Method::ChimeraWave => write!(f, "Chimera-wave"),
            Method::ChimeraNative => write!(f, "Chimera(2 replicas)"),
            Method::Hanayo { waves } => write!(f, "Hanayo(W={waves})"),
        }
    }
}

/// A complete cluster-level configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParallelPlan {
    /// Scheduling method.
    pub method: Method,
    /// Data-parallel groups (`D` in the figures).
    pub dp: u32,
    /// Devices per pipeline (`P`).
    pub pp: u32,
    /// Micro-batches per pipeline per iteration (`B`).
    pub micro_batches: u32,
    /// Sequences per micro-batch.
    pub micro_batch_size: u32,
    /// Activation-recomputation mode: the cost table is built with it, so
    /// both the stash accounting (boundary-only under `Full`) and the
    /// backward time (`T_B' = T_B + T_F`) flow into the simulation.
    pub recompute: Recompute,
}

/// Plan evaluation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The plan needs more devices than the cluster has.
    ClusterTooSmall {
        /// Devices required (`dp × pp`).
        needed: u32,
        /// Devices available.
        available: u32,
    },
    /// Chimera-wave requires an even pipeline width and micro-batch count.
    OddChimeraSplit,
    /// The pipeline schedule could not be generated.
    Schedule(ScheduleError),
    /// A cost or link quantity was NaN, infinite or non-positive — it would
    /// corrupt the simulator's event ordering (see
    /// [`crate::engine::validate_numerics`]).
    Numerics(NumericsError),
    /// The engine rejected the run (shape mismatch or deadlock) — the
    /// typed form of what `simulate` panics on, surfaced by routing the
    /// plan through [`crate::engine::try_simulate`].
    Sim(SimError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::ClusterTooSmall { needed, available } => {
                write!(f, "plan needs {needed} devices, cluster has {available}")
            }
            PlanError::OddChimeraSplit => write!(f, "Chimera-wave needs even P and B"),
            PlanError::Schedule(e) => write!(f, "schedule generation failed: {e}"),
            PlanError::Numerics(e) => write!(f, "invalid simulation inputs: {e}"),
            PlanError::Sim(e) => write!(f, "simulation rejected: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<ScheduleError> for PlanError {
    fn from(e: ScheduleError) -> Self {
        PlanError::Schedule(e)
    }
}

impl From<hanayo_core::config::ConfigError> for PlanError {
    fn from(e: hanayo_core::config::ConfigError) -> Self {
        PlanError::Schedule(ScheduleError::Config(e))
    }
}

/// Result of evaluating a plan on a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanResult {
    /// The evaluated plan.
    pub plan: ParallelPlan,
    /// Pipeline iteration time (max over groups), excluding the all-reduce.
    pub pipeline_time: f64,
    /// Flush-time gradient all-reduce (0 when `dp == 1`).
    pub allreduce_time: f64,
    /// End-to-end iteration time.
    pub iteration_time: f64,
    /// Sequences per second across the whole cluster.
    pub throughput: f64,
    /// Bubble ratio of the first pipeline group.
    pub bubble_ratio: f64,
    /// Peak bytes per *global* device.
    pub peak_mem: Vec<u64>,
    /// Devices whose peak exceeds their capacity.
    pub oom_devices: Vec<usize>,
    /// Report of the first pipeline group (timeline etc.).
    pub group_report: SimReport,
}

impl PlanResult {
    /// Did any device run out of memory?
    pub fn is_oom(&self) -> bool {
        !self.oom_devices.is_empty()
    }
}

/// Resolve a method into the pipeline actually simulated:
/// `(scheme, pipeline width, dp multiplier, micro-batch divisor)`.
pub(crate) fn resolve(
    method: Method,
    pp: u32,
    b: u32,
) -> Result<(Scheme, u32, u32, u32), PlanError> {
    match method {
        Method::GPipe => Ok((Scheme::GPipe, pp, 1, b)),
        Method::Dapple => Ok((Scheme::Dapple, pp, 1, b)),
        Method::ChimeraNative => Ok((Scheme::Chimera, pp, 1, b)),
        Method::ChimeraWave => {
            if !pp.is_multiple_of(2) || !b.is_multiple_of(2) {
                return Err(PlanError::OddChimeraSplit);
            }
            Ok((Scheme::Hanayo { waves: 1 }, pp / 2, 2, b / 2))
        }
        Method::Hanayo { waves } => Ok((Scheme::Hanayo { waves }, pp, 1, b)),
    }
}

/// Evaluate a plan: simulate every pipeline group on its device slice, add
/// the data-parallel all-reduce, merge memory, and compute throughput.
pub fn evaluate_plan(
    plan: &ParallelPlan,
    model: &ModelConfig,
    cluster: &ClusterSpec,
    opts: SimOptions,
) -> Result<PlanResult, PlanError> {
    let needed = plan.dp * plan.pp;
    if needed as usize > cluster.len() {
        return Err(PlanError::ClusterTooSmall { needed, available: cluster.len() as u32 });
    }
    let (scheme, pp_eff, dp_mult, b_eff) = resolve(plan.method, plan.pp, plan.micro_batches)?;
    let dp_eff = plan.dp * dp_mult;

    let cfg = PipelineConfig::new(pp_eff, b_eff, scheme)?;
    let schedule = build_schedule(&cfg)?;
    let cost = CostTable::build_with(model, cfg.stages(), plan.micro_batch_size, plan.recompute);
    // Vet numerics before anything reaches the event heap: a NaN cost or
    // bandwidth would otherwise silently corrupt every simulated time.
    validate_numerics(&cost, cluster, &opts).map_err(PlanError::Numerics)?;

    evaluate_resolved(plan, cluster, opts, (pp_eff, dp_eff, b_eff), &schedule, &cost)
}

pub(crate) use crate::cache::GroupReportMemo;

/// Cross-candidate reuse handles for [`evaluate_resolved_with`]. The
/// `Default` value (`none`) reproduces the from-scratch path exactly.
#[derive(Default, Clone, Copy)]
pub(crate) struct SimReuse<'a> {
    /// Pre-lowered schedule; must be lowered from the same schedule with
    /// matching lookahead options.
    pub compiled: Option<&'a CompiledSchedule>,
    /// `(memo, artifact id)` for group-report reuse across candidates.
    pub memo: Option<(&'a GroupReportMemo, u64)>,
    /// Simulate each data-parallel group's sub-cluster once: later groups
    /// whose sub-cluster equals group 0's (always, on a homogeneous
    /// cluster) reuse group 0's report. Off in the default path so the
    /// per-candidate profile stays exactly the seed's; the batched tuner
    /// turns it on.
    pub dedup_groups: bool,
}

/// The simulation half of [`evaluate_plan`], taking the already-resolved
/// shape and the built schedule/cost table. The tuner's static pre-pass
/// builds these artifacts anyway to replay memory; handing them over here
/// means a plan that survives the pre-pass is not re-lowered from scratch.
/// Schedule lowering and cost construction are deterministic, so the
/// result is byte-identical to the from-scratch path.
pub(crate) fn evaluate_resolved(
    plan: &ParallelPlan,
    cluster: &ClusterSpec,
    opts: SimOptions,
    shape: (u32, u32, u32),
    schedule: &Schedule,
    cost: &CostTable,
) -> Result<PlanResult, PlanError> {
    evaluate_resolved_with(plan, cluster, opts, shape, schedule, cost, SimReuse::default())
}

/// [`evaluate_resolved`] with optional cross-candidate reuse. Every reuse
/// channel returns values that are pure functions of the inputs the
/// channel is keyed on, so enabling any combination of them yields a
/// byte-identical [`PlanResult`] (`tuner::tests` pins this).
pub(crate) fn evaluate_resolved_with(
    plan: &ParallelPlan,
    cluster: &ClusterSpec,
    opts: SimOptions,
    (pp_eff, dp_eff, b_eff): (u32, u32, u32),
    schedule: &Schedule,
    cost: &CostTable,
    reuse: SimReuse<'_>,
) -> Result<PlanResult, PlanError> {
    // Simulate each group on its contiguous device slice. `resolve`
    // guarantees `dp_eff >= 1`, so group 0 runs unconditionally; any later
    // group whose sub-cluster equals group 0's (always, on a homogeneous
    // cluster) reuses group 0's report instead of re-simulating — the
    // engine is deterministic, so the skipped run could only have
    // reproduced the same report.
    let simulate_sub = |sub: &ClusterSpec, first: usize| -> Result<SimReport, PlanError> {
        if let Some((memo, id)) = reuse.memo {
            if let Some(hit) = memo.get(&(id, first)) {
                return Ok(hit);
            }
        }
        let report = match reuse.compiled {
            Some(compiled) => try_simulate_compiled(compiled, schedule, cost, sub, opts),
            None => try_simulate(schedule, cost, sub, opts),
        }
        .map_err(|e| match e {
            SimError::Numerics(n) => PlanError::Numerics(n),
            other => PlanError::Sim(other),
        })?;
        if let Some((memo, id)) = reuse.memo {
            memo.insert_if_absent((id, first), report.clone());
        }
        Ok(report)
    };
    let group_devices = |g: u32| -> Vec<usize> {
        (0..pp_eff as usize).map(|r| (g * pp_eff) as usize + r).collect()
    };
    let mut peak_mem = vec![0u64; cluster.len()];
    let record_peaks = |devices: &[usize], report: &SimReport, peak_mem: &mut [u64]| {
        for (r, &global) in devices.iter().enumerate() {
            peak_mem[global] = report.peak_mem[r];
        }
    };

    let devices0 = group_devices(0);
    let sub0 = cluster.select(&devices0);
    let group_report = simulate_sub(&sub0, devices0[0])?;
    record_peaks(&devices0, &group_report, &mut peak_mem);
    let mut pipeline_time = group_report.iteration_time;
    for g in 1..dp_eff {
        let devices = group_devices(g);
        let sub = cluster.select(&devices);
        if reuse.dedup_groups && sub == sub0 {
            // Identical sub-cluster, same schedule/cost/options: the
            // simulation is a pure function of those, so group 0's report
            // already is this group's report (and its iteration time
            // cannot raise the running max).
            record_peaks(&devices, &group_report, &mut peak_mem);
        } else {
            let report = simulate_sub(&sub, devices[0])?;
            record_peaks(&devices, &report, &mut peak_mem);
            pipeline_time = pipeline_time.max(report.iteration_time);
        }
    }

    // Data-parallel gradient all-reduce of the fp16 gradient buffers. Only
    // the non-overlapped fraction is exposed on the critical path (see
    // SimOptions::allreduce_overlap).
    let allreduce_time = if dp_eff > 1 {
        let raw = (0..pp_eff as usize)
            .map(|r| {
                let ring: Vec<usize> = (0..dp_eff).map(|g| (g * pp_eff) as usize + r).collect();
                ring_allreduce_time(cluster, &ring, group_report.grad_mem[r])
            })
            .fold(0.0, f64::max);
        raw * (1.0 - opts.allreduce_overlap.clamp(0.0, 1.0))
    } else {
        0.0
    };

    let iteration_time = pipeline_time + allreduce_time;
    let sequences = (dp_eff * b_eff * plan.micro_batch_size) as f64;
    let capacities: Vec<u64> = (0..cluster.len()).map(|d| cluster.memory(d)).collect();
    let oom_devices =
        peak_mem.iter().enumerate().filter(|&(d, &m)| m > capacities[d]).map(|(d, _)| d).collect();

    Ok(PlanResult {
        plan: *plan,
        pipeline_time,
        allreduce_time,
        iteration_time,
        throughput: sequences / iteration_time,
        bubble_ratio: group_report.bubble_ratio,
        peak_mem,
        oom_devices,
        group_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanayo_cluster::topology::{fc_full_nvlink, lonestar6, pc_partial_nvlink};

    fn plan(method: Method, dp: u32, pp: u32, b: u32) -> ParallelPlan {
        ParallelPlan {
            method,
            dp,
            pp,
            micro_batches: b,
            micro_batch_size: 1,
            recompute: Recompute::None,
        }
    }

    fn eval(p: &ParallelPlan, cluster: &ClusterSpec) -> PlanResult {
        evaluate_plan(p, &ModelConfig::bert64(), cluster, SimOptions::default()).unwrap()
    }

    #[test]
    fn fig9_ordering_on_fc() {
        // FC (full NVLink): H-2 > C > D ≈ G in throughput.
        let cluster = fc_full_nvlink(8);
        let g = eval(&plan(Method::GPipe, 1, 8, 8), &cluster);
        let d = eval(&plan(Method::Dapple, 1, 8, 8), &cluster);
        let c = eval(&plan(Method::ChimeraWave, 1, 8, 8), &cluster);
        let h = eval(&plan(Method::Hanayo { waves: 2 }, 1, 8, 8), &cluster);
        assert!(c.throughput > d.throughput, "C {} vs D {}", c.throughput, d.throughput);
        assert!(h.throughput > c.throughput, "H {} vs C {}", h.throughput, c.throughput);
        assert!((g.throughput - d.throughput).abs() / d.throughput < 0.05);
    }

    #[test]
    fn chimera_wave_uses_two_groups() {
        let cluster = fc_full_nvlink(8);
        let c = eval(&plan(Method::ChimeraWave, 1, 8, 8), &cluster);
        assert!(c.allreduce_time > 0.0, "replica dimension must all-reduce");
        // All 8 devices carry weights.
        assert!(c.peak_mem.iter().all(|&m| m > 0));
    }

    #[test]
    fn explicit_dp_trades_bubbles_for_allreduce() {
        // (D=2, P=4) has a shorter pipe (lower bubble ratio) but pays the
        // gradient all-reduce; (D=1, P=8) is the reverse. Both must be
        // evaluable and land in the same ballpark — the Fig. 10 search is
        // what picks the winner per cluster.
        let cluster = fc_full_nvlink(8);
        let deep = eval(&plan(Method::Hanayo { waves: 2 }, 1, 8, 8), &cluster);
        let wide = eval(&plan(Method::Hanayo { waves: 2 }, 2, 4, 4), &cluster);
        assert!(wide.bubble_ratio < deep.bubble_ratio, "wide pipe has fewer bubbles");
        assert!(wide.allreduce_time > 0.0 && deep.allreduce_time == 0.0);
        let ratio = wide.throughput / deep.throughput;
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rejects_oversized_plans() {
        let cluster = fc_full_nvlink(8);
        let err = evaluate_plan(
            &plan(Method::Dapple, 2, 8, 8),
            &ModelConfig::bert64(),
            &cluster,
            SimOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::ClusterTooSmall { needed: 16, .. }));
    }

    #[test]
    fn rejects_odd_chimera_wave() {
        let cluster = fc_full_nvlink(8);
        let err = evaluate_plan(
            &plan(Method::ChimeraWave, 1, 7, 8),
            &ModelConfig::bert64(),
            &cluster,
            SimOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, PlanError::OddChimeraSplit);
    }

    #[test]
    fn gpipe_ooms_where_hanayo_fits() {
        // Lonestar6 40 GB, BERT, B = 2P, micro-batch 2 sequences: GPipe
        // stashes all 16 micro-batches and dies; Hanayo stays within its
        // 1F1B-style budget.
        let cluster = lonestar6(8);
        let big = |method| ParallelPlan {
            method,
            dp: 1,
            pp: 8,
            micro_batches: 16,
            micro_batch_size: 2,
            recompute: Recompute::None,
        };
        let g = eval(&big(Method::GPipe), &cluster);
        let h = eval(&big(Method::Hanayo { waves: 2 }), &cluster);
        assert!(g.is_oom(), "GPipe peak {:?}", g.peak_mem.iter().max());
        assert!(!h.is_oom(), "Hanayo peak {:?}", h.peak_mem.iter().max());
    }

    #[test]
    fn full_recompute_rescues_an_oom_plan() {
        // The GPipe configuration that dies above fits once the plan
        // carries Recompute::Full — the §6 "combine with checkpointing"
        // claim, now a first-class plan axis.
        let cluster = lonestar6(8);
        let mut plan = ParallelPlan {
            method: Method::GPipe,
            dp: 1,
            pp: 8,
            micro_batches: 16,
            micro_batch_size: 2,
            recompute: Recompute::None,
        };
        let none = eval(&plan, &cluster);
        plan.recompute = Recompute::Full;
        let full = eval(&plan, &cluster);
        assert!(none.is_oom() && !full.is_oom());
        // Memory falls, but the replayed forward slows the iteration.
        assert!(full.peak_mem.iter().max() < none.peak_mem.iter().max());
        assert!(full.iteration_time > none.iteration_time);
    }

    #[test]
    fn overlap_outside_unit_interval_is_clamped() {
        // overlap = 1.5 must not produce negative exposed all-reduce time
        // (which would inflate throughput past the overlap = 1.0 bound).
        let cluster = fc_full_nvlink(8);
        let p = plan(Method::Hanayo { waves: 2 }, 2, 4, 4);
        let at = |overlap: f64| {
            evaluate_plan(
                &p,
                &ModelConfig::bert64(),
                &cluster,
                SimOptions { allreduce_overlap: overlap, ..Default::default() },
            )
            .unwrap()
        };
        let over = at(1.5);
        assert_eq!(over.allreduce_time, 0.0, "exposed all-reduce went negative");
        assert_eq!(over.throughput, at(1.0).throughput);
        let under = at(-0.5);
        assert_eq!(under.allreduce_time, at(0.0).allreduce_time);
        assert!(under.throughput <= over.throughput);
    }

    #[test]
    fn nan_overlap_is_rejected_not_simulated() {
        let cluster = fc_full_nvlink(8);
        let err = evaluate_plan(
            &plan(Method::Dapple, 2, 4, 4),
            &ModelConfig::bert64(),
            &cluster,
            SimOptions { allreduce_overlap: f64::NAN, ..Default::default() },
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::Numerics(NumericsError::Overlap { .. })));
    }

    #[test]
    fn corrupt_cluster_is_rejected_not_simulated() {
        let mut cluster = fc_full_nvlink(8);
        cluster.links[3][4].bandwidth = f64::NAN;
        let err = evaluate_plan(
            &plan(Method::Dapple, 1, 8, 8),
            &ModelConfig::bert64(),
            &cluster,
            SimOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            PlanError::Numerics(NumericsError::Bandwidth { src: 3, dst: 4, .. })
        ));
    }

    #[test]
    fn throughput_counts_all_groups() {
        let cluster = fc_full_nvlink(8);
        let one = eval(&plan(Method::Dapple, 1, 4, 4), &cluster);
        let two = eval(&plan(Method::Dapple, 2, 4, 4), &cluster);
        // Two groups process twice the sequences; all-reduce taxes a bit.
        assert!(two.throughput > 1.5 * one.throughput);
    }

    #[test]
    fn pc_cluster_placement_matters_for_chimera_wave() {
        // On PC, the first 1-wave group lands on NVLink pairs (0..4
        // contains pairs 01 and 23) — it must still beat DAPPLE.
        let cluster = pc_partial_nvlink(8);
        let c = eval(&plan(Method::ChimeraWave, 1, 8, 8), &cluster);
        let d = eval(&plan(Method::Dapple, 1, 8, 8), &cluster);
        assert!(c.throughput > d.throughput);
    }
}
