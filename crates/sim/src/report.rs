//! Simulation results: timing, utilisation, memory, and rendering.

use serde::{Deserialize, Serialize};

/// One executed compute op with wall-clock times (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimSpan {
    /// Start time.
    pub start: f64,
    /// End time.
    pub end: f64,
    /// Micro-batch.
    pub mb: u32,
    /// Global stage.
    pub stage: u32,
    /// Backward?
    pub backward: bool,
}

/// The result of simulating one pipeline iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Wall time of the iteration (flush completion of the slowest device).
    pub iteration_time: f64,
    /// Busy compute seconds per device.
    pub device_busy: Vec<f64>,
    /// Seconds each device spent blocked waiting for messages.
    pub device_comm_wait: Vec<f64>,
    /// `1 - busy / (P · iteration_time)`.
    pub bubble_ratio: f64,
    /// Peak bytes per device (weights + stash high-water mark).
    pub peak_mem: Vec<u64>,
    /// Static weight/optimizer bytes per device.
    pub weight_mem: Vec<u64>,
    /// fp16 gradient-buffer bytes per device (the all-reduce volume).
    pub grad_mem: Vec<u64>,
    /// Executed spans per device (for Gantt rendering).
    pub spans: Vec<Vec<SimSpan>>,
}

impl SimReport {
    /// Devices whose peak memory exceeds the given capacities.
    pub fn oom_devices(&self, capacity: &[u64]) -> Vec<usize> {
        self.peak_mem
            .iter()
            .enumerate()
            .filter(|&(d, &m)| m > capacity[d])
            .map(|(d, _)| d)
            .collect()
    }

    /// Highest per-device peak (the §5.1 "highest peak memory" criterion).
    pub fn highest_peak(&self) -> u64 {
        self.peak_mem.iter().copied().max().unwrap_or(0)
    }

    /// Population variance of per-device peaks, in GB² (the §5.1 balance
    /// statistic).
    pub fn peak_variance_gb2(&self) -> f64 {
        let gb: Vec<f64> = self.peak_mem.iter().map(|&b| b as f64 / 1e9).collect();
        let mean = gb.iter().sum::<f64>() / gb.len() as f64;
        gb.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / gb.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            iteration_time: 10.0,
            device_busy: vec![8.0, 6.0],
            device_comm_wait: vec![1.0, 2.0],
            bubble_ratio: 0.3,
            peak_mem: vec![30_000_000_000, 10_000_000_000],
            weight_mem: vec![10_000_000_000, 10_000_000_000],
            grad_mem: vec![1_250_000_000, 1_250_000_000],
            spans: vec![vec![], vec![]],
        }
    }

    #[test]
    fn oom_compares_per_device() {
        let r = report();
        assert_eq!(r.oom_devices(&[40_000_000_000, 40_000_000_000]), Vec::<usize>::new());
        assert_eq!(r.oom_devices(&[20_000_000_000, 40_000_000_000]), vec![0]);
    }

    #[test]
    fn highest_peak_is_max() {
        assert_eq!(report().highest_peak(), 30_000_000_000);
    }

    #[test]
    fn variance_of_unbalanced_profile_is_positive() {
        assert!(report().peak_variance_gb2() > 0.0);
    }
}
