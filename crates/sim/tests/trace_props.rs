//! Property tests for the trace lowering: on random `(scheme, P, M)`
//! configurations the emitted trace serde-round-trips *exactly*, every
//! device's compute spans are sorted and non-overlapping, and the trace
//! agrees with the report it was lowered alongside.

use hanayo_cluster::topology::paper_clusters;
use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::schedule::build_schedule;
use hanayo_model::{CostTable, ModelConfig};
use hanayo_sim::{simulate_traced, SimOptions};
use hanayo_trace::{Trace, TraceKind};
use proptest::prelude::*;

fn any_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::GPipe),
        Just(Scheme::Dapple),
        Just(Scheme::Chimera),
        (2u32..=2).prop_map(|c| Scheme::Interleaved { chunks: c }),
        (1u32..=3).prop_map(|w| Scheme::Hanayo { waves: w }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn traces_roundtrip_exactly_and_spans_are_serial(
        p in 2u32..=6,
        b in 2u32..=8,
        scheme in any_scheme(),
        mb in 1u32..=3,
        cluster_idx in 0usize..4,
        prefetch_off in 0u32..=1,
    ) {
        // Chimera needs an even device and micro-batch split; round the
        // random shape up rather than discarding the case.
        let (p, b) = if scheme == Scheme::Chimera {
            (p + p % 2, b + b % 2)
        } else {
            (p, b)
        };
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let cluster = paper_clusters(p as usize).remove(cluster_idx);
        let cost = CostTable::build(&ModelConfig::gpt128(), cfg.stages(), mb);
        let opts = SimOptions { trace: true, prefetch: prefetch_off == 0, ..Default::default() };
        let (report, trace) = simulate_traced(&schedule, &cost, &cluster, opts);
        let trace = trace.expect("trace requested");

        // Every invariant: finite ordered spans, devices in range,
        // canonical sort, per-device serial compute.
        prop_assert!(trace.validate().is_ok(), "{:?}", trace.validate());
        prop_assert_eq!(trace.devices, p);

        // The trace and the report describe the same run, exactly.
        prop_assert_eq!(trace.makespan(), report.iteration_time);
        prop_assert_eq!(trace.device_busy(), report.device_busy.clone());

        // Structural counts: one Fwd and one Bwd per (mb, stage).
        let ops = (b * cfg.stages()) as usize;
        let count = |k: TraceKind| trace.events.iter().filter(|e| e.kind == k).count();
        prop_assert_eq!(count(TraceKind::Fwd), ops);
        prop_assert_eq!(count(TraceKind::Bwd), ops);
        prop_assert_eq!(count(TraceKind::Send), count(TraceKind::Recv));

        // Serde round-trip is exact: the shim renders floats shortest
        // round-trip, so re-parsing reproduces every bit.
        let json = serde_json::to_string(&trace).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, trace);
    }
}
