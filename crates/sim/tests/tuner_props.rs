//! Property tests for the parallel tuner: across random `(model, cluster,
//! batch)` triples, parallel evaluation must return a [`Tuning`] that is
//! **byte-identical** (per its JSON serialisation) to the serial reference
//! run — worker interleaving must never leak into the ranking.

use hanayo_cluster::topology::{lonestar6, paper_clusters};
use hanayo_model::{ModelConfig, Recompute};
use hanayo_sim::tuner::{tune, tune_serial, Rejection, TuneOptions};
use hanayo_sim::ParallelPlan;
use proptest::prelude::*;

fn pick_model(idx: usize) -> ModelConfig {
    let m = if idx == 0 { ModelConfig::bert64() } else { ModelConfig::gpt128() };
    m.with_train_bytes_per_param(8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_tuning_is_byte_identical_to_serial(
        model_idx in 0usize..2,
        cluster_idx in 0usize..4,
        batch in 4u32..=16,
        micro_batch_size in 1u32..=2,
        wide in 0u8..2,
    ) {
        let model = pick_model(model_idx);
        let cluster = paper_clusters(8).remove(cluster_idx);
        let mut opts = TuneOptions { min_pp: 4, ..Default::default() };
        if wide == 1 {
            opts = opts.wide();
        }
        let par = tune(&model, &cluster, batch, micro_batch_size, &opts);
        let ser = tune_serial(&model, &cluster, batch, micro_batch_size, &opts);
        prop_assert_eq!(&par, &ser, "structural divergence");
        let par_bytes = serde_json::to_string(&par).expect("tuning serialises");
        let ser_bytes = serde_json::to_string(&ser).expect("tuning serialises");
        prop_assert_eq!(par_bytes, ser_bytes, "byte divergence");
    }

    #[test]
    fn recompute_axis_keeps_parallel_serial_byte_identical(
        model_idx in 0usize..2,
        cluster_idx in 0usize..4,
        batch in 4u32..=12,
        micro_batch_size in 1u32..=2,
    ) {
        // The new axis enabled explicitly (not via .wide()): parallel and
        // serial evaluation must still serialise to the same bytes, and
        // every ranked candidate must carry one of the swept modes.
        let model = pick_model(model_idx);
        let cluster = paper_clusters(8).remove(cluster_idx);
        let opts = TuneOptions {
            min_pp: 4,
            recompute_modes: Recompute::ALL.to_vec(),
            ..Default::default()
        };
        let par = tune(&model, &cluster, batch, micro_batch_size, &opts);
        let ser = tune_serial(&model, &cluster, batch, micro_batch_size, &opts);
        let par_bytes = serde_json::to_string(&par).expect("tuning serialises");
        let ser_bytes = serde_json::to_string(&ser).expect("tuning serialises");
        prop_assert_eq!(par_bytes, ser_bytes, "byte divergence with the recompute axis");
        // Both modes genuinely appear in the evaluated space.
        for mode in Recompute::ALL {
            let seen = par.ranked.iter().any(|c| c.plan.recompute == mode)
                || par.rejected.iter().any(|r| r.plan().recompute == mode);
            prop_assert!(seen, "mode {mode} missing from the space");
        }
    }

    #[test]
    fn every_candidate_is_ranked_or_rejected(
        model_idx in 0usize..2,
        cluster_idx in 0usize..4,
        batch in 4u32..=12,
    ) {
        // The widened space never loses candidates: repeated runs agree on
        // the exact partition sizes, and nothing is both ranked and
        // rejected.
        let model = pick_model(model_idx);
        let cluster = paper_clusters(8).remove(cluster_idx);
        let opts = TuneOptions { min_pp: 4, ..Default::default() }.wide();
        let a = tune(&model, &cluster, batch, 1, &opts);
        let b = tune(&model, &cluster, batch, 1, &opts);
        prop_assert_eq!(a.ranked.len(), b.ranked.len());
        prop_assert_eq!(a.rejected.len(), b.rejected.len());
        for c in &a.ranked {
            let also_rejected = a.rejected.iter().any(|r| {
                let sim = match r {
                    hanayo_sim::Rejection::Oom { sim, .. } => sim,
                    hanayo_sim::Rejection::InvalidShape { sim, .. } => sim,
                };
                r.plan() == &c.plan && *sim == c.sim
            });
            prop_assert!(!also_rejected, "candidate both ranked and rejected");
        }
    }
}

/// Regression: a capacity-constrained cluster that is infeasible under
/// `Recompute::None` (nothing ranked, only OOM rejections) becomes
/// feasible once the recompute axis is enabled — and the ranked table
/// names the mode that made it fit.
#[test]
fn capacity_constrained_cluster_is_rescued_by_the_recompute_axis() {
    // BERT with the full 16 B/param mixed-precision Adam accounting on
    // 40 GB A100s, 8-sequence micro-batches: every stash-everything plan
    // overflows the card.
    let model = ModelConfig::bert64();
    let cluster = lonestar6(8);
    let narrow = TuneOptions { min_pp: 8, ..Default::default() };

    let none_only = tune(&model, &cluster, 16, 8, &narrow);
    assert!(none_only.best().is_none(), "expected no feasible plan under Recompute::None");
    assert!(
        none_only.rejected.iter().any(Rejection::is_oom),
        "the infeasibility must be memory, not shape"
    );

    let with_axis = TuneOptions { recompute_modes: Recompute::ALL.to_vec(), ..narrow };
    let tuning = tune(&model, &cluster, 16, 8, &with_axis);
    let best = tuning.best().expect("a checkpointed plan must fit");
    assert_eq!(best.plan.recompute, Recompute::Full, "the ranked table must name the mode");
    // The winner's stash-everything twin is still an OOM rejection: the
    // mode — and nothing else — is what rescued the plan.
    let twin = ParallelPlan { recompute: Recompute::None, ..best.plan };
    assert!(tuning.rejected.iter().any(|r| r.is_oom() && r.plan() == &twin));
    // Serial evaluation agrees byte for byte on the rescued space.
    let serial = tune_serial(&model, &cluster, 16, 8, &with_axis);
    assert_eq!(serde_json::to_string(&tuning).unwrap(), serde_json::to_string(&serial).unwrap());
}
