//! Property tests for the parallel tuner: across random `(model, cluster,
//! batch)` triples, parallel evaluation must return a [`Tuning`] that is
//! **byte-identical** (per its JSON serialisation) to the serial reference
//! run — worker interleaving must never leak into the ranking.

use hanayo_cluster::topology::paper_clusters;
use hanayo_model::ModelConfig;
use hanayo_sim::tuner::{tune, tune_serial, TuneOptions};
use proptest::prelude::*;

fn pick_model(idx: usize) -> ModelConfig {
    let m = if idx == 0 { ModelConfig::bert64() } else { ModelConfig::gpt128() };
    m.with_train_bytes_per_param(8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_tuning_is_byte_identical_to_serial(
        model_idx in 0usize..2,
        cluster_idx in 0usize..4,
        batch in 4u32..=16,
        micro_batch_size in 1u32..=2,
        wide in 0u8..2,
    ) {
        let model = pick_model(model_idx);
        let cluster = paper_clusters(8).remove(cluster_idx);
        let mut opts = TuneOptions { min_pp: 4, ..Default::default() };
        if wide == 1 {
            opts = opts.wide();
        }
        let par = tune(&model, &cluster, batch, micro_batch_size, &opts);
        let ser = tune_serial(&model, &cluster, batch, micro_batch_size, &opts);
        prop_assert_eq!(&par, &ser, "structural divergence");
        let par_bytes = serde_json::to_string(&par).expect("tuning serialises");
        let ser_bytes = serde_json::to_string(&ser).expect("tuning serialises");
        prop_assert_eq!(par_bytes, ser_bytes, "byte divergence");
    }

    #[test]
    fn every_candidate_is_ranked_or_rejected(
        model_idx in 0usize..2,
        cluster_idx in 0usize..4,
        batch in 4u32..=12,
    ) {
        // The widened space never loses candidates: repeated runs agree on
        // the exact partition sizes, and nothing is both ranked and
        // rejected.
        let model = pick_model(model_idx);
        let cluster = paper_clusters(8).remove(cluster_idx);
        let opts = TuneOptions { min_pp: 4, ..Default::default() }.wide();
        let a = tune(&model, &cluster, batch, 1, &opts);
        let b = tune(&model, &cluster, batch, 1, &opts);
        prop_assert_eq!(a.ranked.len(), b.ranked.len());
        prop_assert_eq!(a.rejected.len(), b.rejected.len());
        for c in &a.ranked {
            let also_rejected = a.rejected.iter().any(|r| {
                let sim = match r {
                    hanayo_sim::Rejection::Oom { sim, .. } => sim,
                    hanayo_sim::Rejection::InvalidShape { sim, .. } => sim,
                };
                r.plan() == &c.plan && *sim == c.sim
            });
            prop_assert!(!also_rejected, "candidate both ranked and rejected");
        }
    }
}
