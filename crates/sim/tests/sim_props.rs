//! Property tests for the discrete-event engine and the plan layer.

use hanayo_cluster::topology::{fc_full_nvlink, lonestar6, paper_clusters};
use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::schedule::build_schedule;
use hanayo_model::{CostTable, ModelConfig, Recompute};
use hanayo_sim::{evaluate_plan, simulate, Method, ParallelPlan, SimOptions};
use proptest::prelude::*;

fn any_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::GPipe),
        Just(Scheme::Dapple),
        (1u32..=3).prop_map(|w| Scheme::Hanayo { waves: w }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulation_invariants_hold_for_random_shapes(
        p in 2u32..=6,
        b in 2u32..=8,
        scheme in any_scheme(),
        mb in 1u32..=3,
        cluster_idx in 0usize..4,
    ) {
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let cluster = paper_clusters(p as usize).remove(cluster_idx);
        let cost = CostTable::build(&ModelConfig::gpt128(), cfg.stages(), mb);
        let r = simulate(&schedule, &cost, &cluster, SimOptions::default());
        // Time sanity.
        prop_assert!(r.iteration_time.is_finite() && r.iteration_time > 0.0);
        prop_assert!((0.0..1.0).contains(&r.bubble_ratio));
        // Memory sanity: peak ≥ weights, final stash drained implicitly
        // (peaks recorded only on growth).
        for d in 0..p as usize {
            prop_assert!(r.peak_mem[d] >= r.weight_mem[d]);
            prop_assert!(r.device_comm_wait[d] >= 0.0);
            prop_assert!(r.device_busy[d] > 0.0);
        }
        // Spans are non-overlapping per device and within the iteration.
        for spans in &r.spans {
            for w in spans.windows(2) {
                prop_assert!(w[0].end <= w[1].start + 1e-12);
            }
            if let Some(last) = spans.last() {
                prop_assert!(last.end <= r.iteration_time + 1e-12);
            }
        }
    }

    #[test]
    fn prefetch_never_slows_things_down(
        p in 2u32..=6,
        b in 2u32..=8,
        w in 1u32..=3,
    ) {
        let cfg = PipelineConfig::new(p, b, Scheme::Hanayo { waves: w }).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let cluster = lonestar6(p as usize);
        let cost = CostTable::build(&ModelConfig::bert64(), cfg.stages(), 1);
        let on = simulate(&schedule, &cost, &cluster, SimOptions::default());
        let off = simulate(
            &schedule,
            &cost,
            &cluster,
            SimOptions { prefetch: false, ..Default::default() },
        );
        prop_assert!(on.iteration_time <= off.iteration_time * (1.0 + 1e-9));
    }

    #[test]
    fn recompute_always_trades_time_for_memory(
        p in 2u32..=6,
        b in 2u32..=6,
        w in 1u32..=2,
    ) {
        let cfg = PipelineConfig::new(p, b, Scheme::Hanayo { waves: w }).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let cluster = fc_full_nvlink(p as usize);
        let plain = CostTable::build_with(&ModelConfig::bert64(), cfg.stages(), 2, Recompute::None);
        let ckpt = CostTable::build_with(&ModelConfig::bert64(), cfg.stages(), 2, Recompute::Full);
        let r_plain = simulate(&schedule, &plain, &cluster, SimOptions::default());
        let r_ckpt = simulate(&schedule, &ckpt, &cluster, SimOptions::default());
        prop_assert!(r_ckpt.iteration_time > r_plain.iteration_time);
        prop_assert!(r_ckpt.highest_peak() < r_plain.highest_peak());
    }

    #[test]
    fn faster_devices_never_hurt(
        b in 2u32..=8,
        w in 1u32..=3,
    ) {
        let cfg = PipelineConfig::new(4, b, Scheme::Hanayo { waves: w }).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let cost = CostTable::build(&ModelConfig::gpt128(), cfg.stages(), 1);
        let mut slow = fc_full_nvlink(4);
        slow.mfu = 0.2;
        let mut fast = fc_full_nvlink(4);
        fast.mfu = 0.6;
        let r_slow = simulate(&schedule, &cost, &slow, SimOptions::default());
        let r_fast = simulate(&schedule, &cost, &fast, SimOptions::default());
        prop_assert!(r_fast.iteration_time < r_slow.iteration_time);
    }

    #[test]
    fn plan_throughput_scales_with_micro_batch_size(
        mbs in 1u32..=3,
    ) {
        // Bigger micro-batches amortise latency: sequences/s must not drop.
        let model = ModelConfig::gpt128().with_train_bytes_per_param(8);
        let cluster = fc_full_nvlink(8);
        let thr = |size: u32| {
            let plan = ParallelPlan {
                method: Method::Hanayo { waves: 2 },
                dp: 1,
                pp: 8,
                micro_batches: 8,
                micro_batch_size: size,
                recompute: Recompute::None,
            };
            evaluate_plan(&plan, &model, &cluster, SimOptions::default())
                .unwrap()
                .throughput
        };
        prop_assert!(thr(mbs + 1) >= thr(mbs) * 0.999);
    }
}
