//! Criterion guard on the cost side of the zero-perturbation contract:
//! each pair below runs the same instrumented hot path with the metrics
//! registry disabled and enabled. Disabled instrumentation is one
//! relaxed atomic load and an untaken branch, so the `disabled` series
//! must sit on top of the uninstrumented baselines in `kernels.rs`, and
//! the `enabled` series must stay within noise of `disabled` — the
//! structured counters are either plain locals flushed once per run
//! (workers, engine) or one shard-local bump per dispatch (gemm).
//!
//! The wall-clock version of this guard lives in the `bench` binary's
//! `metrics` family and is recorded into `BENCH_METRICS.json`; this
//! bench keeps the same comparison in the criterion history.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hanayo_cluster::topology::lonestar6;
use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::schedule::build_schedule;
use hanayo_model::builders::MicroModel;
use hanayo_model::{CostTable, ModelConfig};
use hanayo_runtime::trainer::{synthetic_data, train, TrainerConfig};
use hanayo_runtime::LossKind;
use hanayo_sim::{compile_schedule, try_simulate_compiled, SimOptions};
use hanayo_tensor::rng::{seeded, uniform};

/// Run `f` under criterion with the registry forced off, then on; the
/// registry is wiped afterwards so consecutive groups start clean.
fn off_on_pair(g: &mut criterion::BenchmarkGroup, label: &str, mut f: impl FnMut() + Copy) {
    g.bench_function(&format!("{label}_disabled"), |bch| {
        hanayo_metrics::set_enabled(false);
        bch.iter(&mut f);
    });
    g.bench_function(&format!("{label}_enabled"), |bch| {
        hanayo_metrics::set_enabled(true);
        bch.iter(&mut f);
        hanayo_metrics::set_enabled(false);
        hanayo_metrics::reset();
    });
}

fn bench_gemm_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics_gemm_dispatch");
    let a = uniform(&mut seeded(1), 64, 64, 0.5);
    let b = uniform(&mut seeded(2), 64, 64, 0.5);
    off_on_pair(&mut g, "matmul_64x64x64", || {
        black_box(a.matmul(&b));
    });
    g.finish();
}

fn bench_sim_flush(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics_sim_flush");
    let cfg = PipelineConfig::new(8, 16, Scheme::Hanayo { waves: 2 }).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let cost = CostTable::build(&ModelConfig::bert64(), cfg.stages(), 1);
    let cluster = lonestar6(8);
    let opts = SimOptions::default();
    let compiled = compile_schedule(&schedule, &opts);
    off_on_pair(&mut g, "compiled_hanayo_w2_p8_b16", || {
        black_box(try_simulate_compiled(&compiled, &schedule, &cost, &cluster, opts).unwrap());
    });
    g.finish();
}

fn bench_train_instrumented(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics_train");
    let cfg = PipelineConfig::new(8, 8, Scheme::Hanayo { waves: 2 }).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let stages = schedule.stage_map.stages;
    let model = MicroModel { width: 16, total_blocks: stages as usize, seed: 7 };
    let data = synthetic_data(11, 1, 8, 4, 16);
    let trainer = TrainerConfig::new(schedule, model.build_stages(stages), 0.01, LossKind::Mse);
    off_on_pair(&mut g, "train_p8_m8_w16_hanayo_w2", || {
        black_box(train(&trainer, &data));
    });
    g.finish();
}

criterion_group!(benches, bench_gemm_dispatch, bench_sim_flush, bench_train_instrumented);
criterion_main!(benches);
