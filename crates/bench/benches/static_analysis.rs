//! Benchmarks for the static-analysis fast paths this crate ships:
//!
//! * `move_check` — the incremental per-move validity check
//!   ([`hanayo_core::schedule::search::check_move`]) against re-running
//!   the full table checker on every candidate, over the same seeded
//!   move stream `local_search` draws.
//! * `static_prune` — the tuner's OOM-heavy wide sweep with the static
//!   analyzer pre-pass on and off. The pre-pass replaces a simulation
//!   with a liveness replay for every plan it rejects; the bench prints
//!   the number of simulate calls avoided (= recorded OOM rejections)
//!   once at startup so the speedup has its denominator next to it.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hanayo_cluster::topology::lonestar6;
use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::schedule::build_compute_schedule;
use hanayo_core::schedule::search::{apply_move, check_move, sample_legal_moves, TableMove};
use hanayo_core::schedule::table::{check_table_with, ScheduleTable, TableLimits};
use hanayo_model::ModelConfig;
use hanayo_sim::{tune_serial, Rejection, TuneOptions};

/// The move-check workload: a Dapple table at `(P=8, B=8)` and a seeded
/// stream of applicable candidate moves, each paired with the candidate
/// table it produces (what `local_search` validates per round).
fn move_workload() -> (TableLimits, Vec<(ScheduleTable, TableMove)>) {
    let cfg = PipelineConfig::new(8, 8, Scheme::Dapple).unwrap();
    let table = ScheduleTable::from_compute(&build_compute_schedule(&cfg).unwrap());
    let limits = TableLimits::default();
    let candidates: Vec<(ScheduleTable, TableMove)> =
        sample_legal_moves(&table, 0x48414e41594f, 256)
            .into_iter()
            .filter_map(|mv| {
                let mut cand = table.clone();
                apply_move(&mut cand, mv).then_some((cand, mv))
            })
            .collect();
    assert!(candidates.len() >= 64, "degenerate move sample");
    (limits, candidates)
}

fn bench_move_check(c: &mut Criterion) {
    let (limits, candidates) = move_workload();
    let mut g = c.benchmark_group("move_check");
    g.bench_function("full_table_checker", |b| {
        b.iter(|| {
            let mut ok = 0usize;
            for (cand, _) in &candidates {
                if check_table_with(black_box(cand), limits).is_ok() {
                    ok += 1;
                }
            }
            black_box(ok)
        })
    });
    g.bench_function("incremental", |b| {
        b.iter(|| {
            let mut ok = 0usize;
            for (cand, mv) in &candidates {
                if check_move(black_box(cand), *mv, limits).is_ok() {
                    ok += 1;
                }
            }
            black_box(ok)
        })
    });
    g.finish();
}

fn bench_static_prune(c: &mut Criterion) {
    // The OOM-heavy sweep from the tuner's byte-equivalence test: BERT on
    // 8 A100s is memory-starved at global batch 16, so a large share of
    // the wide plan grid dies on capacity — exactly what the static
    // pre-pass skips simulating.
    let model = ModelConfig::bert64();
    let cluster = lonestar6(8);
    let opts = TuneOptions { waves: vec![1, 2, 4], min_pp: 4, ..Default::default() }.wide();
    let pruned_opts = TuneOptions { static_prune: true, ..opts.clone() };
    let unpruned_opts = TuneOptions { static_prune: false, ..opts.clone() };

    let tuning = tune_serial(&model, &cluster, 16, 4, &pruned_opts);
    let avoided = tuning.rejected.iter().filter(|r| matches!(r, Rejection::Oom { .. })).count();
    eprintln!(
        "static_prune: {avoided} of {} evaluated plans rejected statically \
         (simulate calls avoided per sweep)",
        tuning.ranked.len() + tuning.rejected.len()
    );

    let mut g = c.benchmark_group("static_prune");
    g.sample_size(10);
    g.bench_function("on", |b| {
        b.iter(|| black_box(tune_serial(&model, &cluster, 16, 4, &pruned_opts)))
    });
    g.bench_function("off", |b| {
        b.iter(|| black_box(tune_serial(&model, &cluster, 16, 4, &unpruned_opts)))
    });
    g.finish();
}

criterion_group!(benches, bench_move_check, bench_static_prune);
criterion_main!(benches);
