//! Criterion guards for the deterministic fast-path kernels: blocked gemm
//! vs the frozen seed kernel, the fused transposed entries, pooled
//! parallel dispatch, and the compiled simulation path vs the seed engine.
//! Every "fast" series here is pinned bitwise identical to its reference
//! by the tensor proptests and the cross-engine suite; these benches exist
//! so a later PR that quietly loses the speed (while staying correct)
//! shows up in the criterion history.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hanayo_cluster::topology::lonestar6;
use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::schedule::build_schedule;
use hanayo_model::{CostTable, ModelConfig};
use hanayo_sim::{
    compile_schedule, set_reference_engine, try_simulate, try_simulate_compiled, SimOptions,
};
use hanayo_tensor::rng::{seeded, uniform};
use hanayo_tensor::tensor::set_reference_kernels;
use hanayo_tensor::Tensor;

fn dense(rows: usize, cols: usize, seed: u64) -> Tensor {
    uniform(&mut seeded(seed), rows, cols, 0.5)
}

fn bench_gemm_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_kernels");
    let a = dense(64, 64, 1);
    let b = dense(64, 64, 2);
    g.bench_function("blocked_64x64x64", |bch| b64(bch, &a, &b, false));
    g.bench_function("reference_64x64x64", |bch| b64(bch, &a, &b, true));

    // The satellite-bug shape: heavy reduction behind a tiny output.
    let deep_a = dense(4, 4096, 3);
    let deep_b = dense(4096, 4, 4);
    g.bench_function("blocked_4x4096x4", |bch| b64(bch, &deep_a, &deep_b, false));
    g.bench_function("reference_4x4096x4", |bch| b64(bch, &deep_a, &deep_b, true));
    g.finish();

    fn b64(bch: &mut criterion::Bencher, a: &Tensor, b: &Tensor, reference: bool) {
        set_reference_kernels(reference);
        bch.iter(|| black_box(a.matmul(b)));
        set_reference_kernels(false);
    }
}

fn bench_fused_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("fused_kernels");
    let a = dense(96, 64, 5);
    let b = dense(96, 80, 6);
    g.bench_function("fused_at_b", |bch| bch.iter(|| black_box(a.matmul_at_b(&b))));
    g.bench_function("two_step_at_b", |bch| bch.iter(|| black_box(a.transpose().matmul(&b))));
    let c1 = dense(64, 96, 7);
    let c2 = dense(80, 96, 8);
    g.bench_function("fused_a_bt", |bch| bch.iter(|| black_box(c1.matmul_a_bt(&c2))));
    g.bench_function("two_step_a_bt", |bch| bch.iter(|| black_box(c1.matmul(&c2.transpose()))));
    g.finish();
}

fn bench_pooled_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("pooled_dispatch");
    // Wide-but-shallow product: crosses the flops gate, so every
    // iteration pays one pool dispatch (pooled workers after this PR, a
    // fresh thread spawn per call before it).
    let a = dense(64, 128, 9);
    let b = dense(128, 64, 10);
    g.bench_function("par_matmul_64x128x64", |bch| bch.iter(|| black_box(a.matmul(&b))));
    g.finish();
}

fn bench_sim_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_paths");
    let cfg = PipelineConfig::new(8, 16, Scheme::Hanayo { waves: 2 }).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let cost = CostTable::build(&ModelConfig::bert64(), cfg.stages(), 1);
    let cluster = lonestar6(8);
    let opts = SimOptions::default();
    let compiled = compile_schedule(&schedule, &opts);
    g.bench_function("seed_engine_hanayo_w2_p8_b16", |bch| {
        set_reference_engine(true);
        bch.iter(|| black_box(try_simulate(&schedule, &cost, &cluster, opts).unwrap()));
        set_reference_engine(false);
    });
    g.bench_function("fast_engine_hanayo_w2_p8_b16", |bch| {
        bch.iter(|| black_box(try_simulate(&schedule, &cost, &cluster, opts).unwrap()))
    });
    g.bench_function("precompiled_hanayo_w2_p8_b16", |bch| {
        bch.iter(|| {
            black_box(try_simulate_compiled(&compiled, &schedule, &cost, &cluster, opts).unwrap())
        })
    });
    g.finish();
}

criterion_group!(
    kernels,
    bench_gemm_kernels,
    bench_fused_kernels,
    bench_pooled_dispatch,
    bench_sim_paths
);
criterion_main!(kernels);
