//! Micro-benchmarks of the engines underneath the reproduction: schedule
//! generation, validation, the discrete-event simulator, the abstract
//! replay, the tensor substrate, and the threaded runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hanayo_cluster::collective::ring_allreduce_time;
use hanayo_cluster::topology::{fc_full_nvlink, lonestar6};
use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::gantt::replay_timeline;
use hanayo_core::memory::unit_profile;
use hanayo_core::schedule::{build_compute_schedule, build_schedule};
use hanayo_core::validate::validate;
use hanayo_model::builders::MicroModel;
use hanayo_model::{CostTable, ModelConfig};
use hanayo_runtime::trainer::{synthetic_data, train, TrainerConfig};
use hanayo_runtime::LossKind;
use hanayo_sim::{simulate, simulate_reference, SimOptions};
use hanayo_tensor::rng::{seeded, uniform};
use hanayo_tensor::Stage;

fn bench_scheduling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduling");
    let cfg = PipelineConfig::new(8, 16, Scheme::Hanayo { waves: 2 }).unwrap();
    g.bench_function("generate_hanayo_w2_p8_b16", |b| {
        b.iter(|| black_box(build_schedule(&cfg).unwrap()))
    });
    let schedule = build_schedule(&cfg).unwrap();
    g.bench_function("validate_hanayo_w2_p8_b16", |b| {
        b.iter(|| validate(black_box(&schedule)).unwrap())
    });
    let cs = build_compute_schedule(&cfg).unwrap();
    g.bench_function("abstract_replay", |b| b.iter(|| black_box(replay_timeline(&cs, 1, 2, 0))));
    g.bench_function("unit_memory_profile", |b| b.iter(|| black_box(unit_profile(&cs))));
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    let cfg = PipelineConfig::new(8, 16, Scheme::Hanayo { waves: 2 }).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let cost = CostTable::build(&ModelConfig::bert64(), cfg.stages(), 2);
    let fc = fc_full_nvlink(8);
    let tacc = lonestar6(8);
    g.bench_function("simulate_fc", |b| {
        b.iter(|| black_box(simulate(&schedule, &cost, &fc, SimOptions::default())))
    });
    g.bench_function("simulate_tacc", |b| {
        b.iter(|| black_box(simulate(&schedule, &cost, &tacc, SimOptions::default())))
    });
    g.bench_function("ring_allreduce_cost", |b| {
        let ring: Vec<usize> = (0..8).collect();
        b.iter(|| black_box(ring_allreduce_time(&tacc, &ring, 1 << 30)))
    });
    g.finish();
}

fn bench_tensor(c: &mut Criterion) {
    let mut g = c.benchmark_group("tensor");
    let a = uniform(&mut seeded(1), 64, 64, 1.0);
    let bm = uniform(&mut seeded(2), 64, 64, 1.0);
    g.bench_function("matmul_64", |b| b.iter(|| black_box(a.matmul(&bm))));
    let stage = Stage::mlp(&mut seeded(3), 32, 2);
    let x = uniform(&mut seeded(4), 8, 32, 0.5);
    g.bench_function("stage_forward", |b| b.iter(|| black_box(stage.forward(&x))));
    let (_, stash) = stage.forward(&x);
    let dy = uniform(&mut seeded(5), 8, 32, 0.5);
    g.bench_function("stage_backward", |b| b.iter(|| black_box(stage.backward(&stash, &dy))));
    g.finish();
}

/// The indexed fast path against the seed `HashMap` engine on the full
/// 7-scheme sweep at `P = 8, M = 8` — the workload the auto-tuner hammers.
/// The fast path must win; the cross-engine tests separately prove the two
/// produce bit-identical reports.
fn bench_engine_fastpath(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_fastpath");
    let schemes = [
        Scheme::GPipe,
        Scheme::Dapple,
        Scheme::Interleaved { chunks: 2 },
        Scheme::Chimera,
        Scheme::Hanayo { waves: 1 },
        Scheme::Hanayo { waves: 2 },
        Scheme::Hanayo { waves: 4 },
    ];
    let jobs: Vec<_> = schemes
        .iter()
        .map(|&scheme| {
            let cfg = PipelineConfig::new(8, 8, scheme).unwrap();
            let schedule = build_schedule(&cfg).unwrap();
            let cost = CostTable::build(&ModelConfig::bert64(), cfg.stages(), 2);
            (schedule, cost)
        })
        .collect();
    let cluster = lonestar6(8);
    g.bench_function("indexed_sweep_p8_m8", |b| {
        b.iter(|| {
            for (schedule, cost) in &jobs {
                black_box(simulate(schedule, cost, &cluster, SimOptions::default()));
            }
        })
    });
    g.bench_function("reference_sweep_p8_m8", |b| {
        b.iter(|| {
            for (schedule, cost) in &jobs {
                black_box(simulate_reference(schedule, cost, &cluster, SimOptions::default()));
            }
        })
    });
    // The same sweep with trace lowering on: quantifies what opting into
    // `SimOptions::trace` costs. The untraced numbers above are the guard
    // that tracing stays opt-in-only on the hot path.
    g.bench_function("indexed_sweep_p8_m8_traced", |b| {
        b.iter(|| {
            for (schedule, cost) in &jobs {
                black_box(hanayo_sim::simulate_traced(
                    schedule,
                    cost,
                    &cluster,
                    SimOptions { trace: true, ..Default::default() },
                ));
            }
        })
    });
    g.finish();
}

/// Parallel vs. serial evaluation of the widened tuner strategy space —
/// same byte-identical ranking, different wall-clock (they coincide on a
/// single-core host, where the rayon shim degrades to sequential).
fn bench_tuner_parallelism(c: &mut Criterion) {
    let mut g = c.benchmark_group("tuner_parallelism");
    g.sample_size(10);
    let model = ModelConfig::bert64().with_train_bytes_per_param(8);
    let cluster = lonestar6(8);
    let opts = hanayo_sim::TuneOptions { min_pp: 2, ..Default::default() }.wide();
    g.bench_function("tune_parallel_wide", |b| {
        b.iter(|| black_box(hanayo_sim::tune(&model, &cluster, 16, 1, &opts)))
    });
    g.bench_function("tune_serial_wide", |b| {
        b.iter(|| black_box(hanayo_sim::tune_serial(&model, &cluster, 16, 1, &opts)))
    });
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    // The auto-tuner: full strategy-space search on one 8-GPU cluster.
    g.bench_function("tuner_bert_8gpu", |b| {
        let model = ModelConfig::bert64().with_train_bytes_per_param(8);
        let cluster = lonestar6(8);
        let opts = hanayo_sim::TuneOptions { min_pp: 4, ..Default::default() };
        b.iter(|| black_box(hanayo_sim::tune(&model, &cluster, 8, 1, &opts)))
    });
    // Activation-recomputation ablation: same schedule, both cost tables.
    g.bench_function("recompute_ablation", |b| {
        let cfg = PipelineConfig::new(8, 8, Scheme::Hanayo { waves: 2 }).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let cluster = lonestar6(8);
        let plain = CostTable::build_with(
            &ModelConfig::bert64(),
            cfg.stages(),
            2,
            hanayo_model::Recompute::None,
        );
        let ckpt = CostTable::build_with(
            &ModelConfig::bert64(),
            cfg.stages(),
            2,
            hanayo_model::Recompute::Full,
        );
        b.iter(|| {
            (
                black_box(simulate(&schedule, &plain, &cluster, SimOptions::default())),
                black_box(simulate(&schedule, &ckpt, &cluster, SimOptions::default())),
            )
        })
    });
    g.finish();
}

fn bench_runtime(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime");
    g.sample_size(10);
    let cfg = PipelineConfig::new(2, 4, Scheme::Hanayo { waves: 1 }).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let s = schedule.stage_map.stages;
    let model = MicroModel { width: 8, total_blocks: s as usize, seed: 5 };
    let trainer = TrainerConfig::new(schedule, model.build_stages(s), 0.05, LossKind::Mse);
    let data = synthetic_data(6, 1, 4, 2, 8);
    g.bench_function("threaded_iteration_p2_b4", |b| b.iter(|| black_box(train(&trainer, &data))));
    g.finish();
}

criterion_group!(
    benches,
    bench_scheduling,
    bench_simulator,
    bench_engine_fastpath,
    bench_tuner_parallelism,
    bench_tensor,
    bench_extensions,
    bench_runtime
);
criterion_main!(benches);
