//! One Criterion benchmark per paper figure: each bench runs the same
//! computation the `repro` harness uses to regenerate that figure, so
//! `cargo bench` exercises every experiment end to end and tracks the
//! harness's own performance.
//!
//! Figure 10's full grid search takes tens of seconds per evaluation, so
//! its bench measures one representative search cell; the full grid runs
//! in `repro fig10`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hanayo_cluster::topology::lonestar6;
use hanayo_model::{ModelConfig, Recompute};
use hanayo_repro as repro;
use hanayo_sim::{evaluate_plan, Method, ParallelPlan, SimOptions};

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig1_bubble_theory", |b| b.iter(|| black_box(repro::fig1::data())));
    g.bench_function("fig2_comparison_table", |b| b.iter(|| black_box(repro::fig2::data())));
    g.bench_function("fig3_schedule_panels", |b| b.iter(|| black_box(repro::fig3::data())));
    g.bench_function("fig4_sync_vs_async", |b| {
        b.iter(|| {
            (black_box(repro::fig4::sync_timeline()), black_box(repro::fig4::async_timeline()))
        })
    });
    g.bench_function("fig5_transformation", |b| b.iter(|| black_box(repro::fig5::data().1)));
    g.bench_function("fig6_wave_scaling", |b| b.iter(|| black_box(repro::fig6::data())));
    g.bench_function("fig7_bubble_zones", |b| b.iter(|| black_box(repro::fig7::data())));
    g.bench_function("fig8_memory_distribution", |b| b.iter(|| black_box(repro::fig8::data())));
    g.bench_function("fig9_adaptability", |b| b.iter(|| black_box(repro::fig9::data())));
    g.bench_function("fig10_search_cell", |b| {
        // One representative cell of the Fig. 10 grid: BERT, (P=8, D=4),
        // global batch 32, all four methods with Hanayo wave search.
        let model = ModelConfig::bert64().with_train_bytes_per_param(8);
        let cluster = lonestar6(32);
        b.iter(|| {
            let mut out = Vec::new();
            for method in
                [Method::GPipe, Method::Dapple, Method::ChimeraWave, Method::Hanayo { waves: 2 }]
            {
                let plan = ParallelPlan {
                    method,
                    dp: 4,
                    pp: 8,
                    micro_batches: 8,
                    micro_batch_size: 3,
                    recompute: Recompute::None,
                };
                out.push(evaluate_plan(&plan, &model, &cluster, SimOptions::default()));
            }
            black_box(out)
        })
    });
    g.bench_function("fig11_weak_scaling", |b| b.iter(|| black_box(repro::fig11::data())));
    g.bench_function("fig12_strong_scaling", |b| b.iter(|| black_box(repro::fig12::data())));
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
