pub(crate) fn _bench_only() {}
