//! The repo's speed-trajectory harness.
//!
//! Measures **before/after median wall times** for the three tracked
//! workload families and maintains the `BENCH_*.json` trajectory files at
//! the repository root:
//!
//! | file                 | workloads                                        |
//! |----------------------|--------------------------------------------------|
//! | `BENCH_GEMM.json`    | raw gemm kernels, plain and fused-transposed     |
//! | `BENCH_SWEEP.json`   | the full `sweep --wide` tuner invocation         |
//! | `BENCH_TRAIN.json`   | threaded P=8/M=8 training, one run per golden scheme |
//! | `BENCH_METRICS.json` | instrumented hot paths, metrics on vs off        |
//!
//! "Before" re-runs the *same* code with the seed-equivalent slow path
//! selected — `set_reference_kernels(true)` for gemm/training (the frozen
//! scalar kernels plus transpose materialisation), `TuneOptions::batched =
//! false` for the sweep (per-candidate lowering, no cross-candidate
//! sharing) — so both sides measure identical semantics; every fast path
//! is bitwise identical to its slow path by construction and by test.
//! The `metrics` family inverts the reading: "before" is the registry
//! *enabled* and "after" *disabled*, so its speedup column is the
//! instrumentation overhead factor and the zero-perturbation contract
//! holds while it stays ~1.0x.
//!
//! Flags:
//!   --quick            smaller reps/workloads (CI smoke)
//!   --only <family>    run just one of gemm | sweep | train | metrics
//!   --record <label>   append a trajectory entry to each BENCH file
//!   --guard            compare against the last recorded entry; exit 1 if
//!                      any workload's "after" regressed beyond 3x (the
//!                      criterion shim is print-only and cannot fail a
//!                      build, so the regression guard lives here)
//!   --validate         parse + schema-check the BENCH files, run nothing
//!   --metrics <path>   run the remaining families instrumented and write
//!                      the registry on exit (.prom or .json by extension)

use hanayo_cluster::topology::lonestar6;
use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::schedule::build_schedule;
use hanayo_model::builders::MicroModel;
use hanayo_model::{CostTable, ModelConfig};
use hanayo_runtime::trainer::{synthetic_data, train, TrainerConfig};
use hanayo_runtime::LossKind;
use hanayo_sim::{compile_schedule, try_simulate_compiled, tune, SimOptions, TuneOptions};
use hanayo_tensor::tensor::set_reference_kernels;
use hanayo_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

const SCHEMA: &str = "hanayo-bench-v1";
const UNIT: &str = "median ns per iteration";
/// `--guard` failure threshold: the latest "after" may not exceed the
/// recorded "after" by more than this factor (loose enough for shared-CI
/// noise, tight enough to catch a lost fast path, which costs 4x+).
const GUARD_FACTOR: f64 = 3.0;

#[derive(Serialize, Deserialize)]
struct BenchFile {
    schema: String,
    bench: String,
    unit: String,
    entries: Vec<Entry>,
}

#[derive(Serialize, Deserialize)]
struct Entry {
    label: String,
    unix_time_s: u64,
    quick: bool,
    workloads: BTreeMap<String, Workload>,
}

#[derive(Serialize, Deserialize, Clone, Copy)]
struct Workload {
    before_ns: u64,
    after_ns: u64,
    speedup: f64,
}

impl Workload {
    fn new(before_ns: u64, after_ns: u64) -> Workload {
        Workload { before_ns, after_ns, speedup: before_ns as f64 / after_ns.max(1) as f64 }
    }
}

/// Median of `samples` timings, each timing `inner` calls of `f` (plus one
/// untimed warmup), reported as ns per single call.
fn median_ns(samples: usize, inner: usize, mut f: impl FnMut()) -> u64 {
    f();
    let mut times: Vec<u64> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            for _ in 0..inner.max(1) {
                f();
            }
            (t.elapsed().as_nanos() as u64) / inner.max(1) as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Time `f` in both kernel modes: reference (the frozen seed gemm path,
/// transposes materialised) first, then the fast path. The flag is always
/// restored to fast.
fn before_after_kernels(samples: usize, inner: usize, mut f: impl FnMut()) -> Workload {
    set_reference_kernels(true);
    let before = median_ns(samples, inner, &mut f);
    set_reference_kernels(false);
    let after = median_ns(samples, inner, &mut f);
    Workload::new(before, after)
}

/// Deterministic dense matrix (xorshift64*), every element nonzero.
fn dense(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut state = seed | 1;
    let data = (0..rows * cols)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1 << 24) as f32) * 2.0 - 1.0 + 0.001
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

fn bench_gemm(quick: bool) -> BTreeMap<String, Workload> {
    let (samples, inner) = if quick { (3, 8) } else { (7, 40) };
    let mut out = BTreeMap::new();

    let plain = [(64usize, 64usize, 64usize), (4, 4096, 4), (8, 256, 256)];
    for (m, k, n) in plain {
        let a = dense(m, k, 1);
        let b = dense(k, n, 2);
        let w = before_after_kernels(samples, inner, || {
            black_box(a.matmul(&b));
        });
        out.insert(format!("matmul_{m}x{k}x{n}"), w);
    }

    // Fused transposed kernels, as Stage::backward calls them: before =
    // materialise the transpose and run the frozen kernel.
    let a = dense(96, 64, 3);
    let b = dense(96, 80, 4);
    out.insert(
        "fused_at_b_96x64_96x80".into(),
        before_after_kernels(samples, inner, || {
            black_box(a.matmul_at_b(&b));
        }),
    );
    let a = dense(64, 96, 5);
    let b = dense(80, 96, 6);
    out.insert(
        "fused_a_bt_64x96_80x96".into(),
        before_after_kernels(samples, inner, || {
            black_box(a.matmul_a_bt(&b));
        }),
    );
    out
}

fn bench_sweep(quick: bool) -> BTreeMap<String, Workload> {
    // The `sweep --wide` defaults: BERT-64 on 8x lonestar6, 16 global
    // micro-batches of 1 sequence. "Before" is the seed sweep exactly as
    // the repository shipped it: the HashMap-keyed reference engine, one
    // full rebuild + lowering + per-group simulation per candidate.
    // "After" is the batched sweep on the compiled engine. Both rankings
    // are byte-identical (`tuner::tests` pins batched == per-candidate and
    // the cross-engine suite pins the two engines), so the ratio is pure
    // wall-clock.
    let model = ModelConfig::bert64();
    let cluster = lonestar6(8);
    let (batches, samples) = if quick { (8, 3) } else { (16, 5) };
    let wide = TuneOptions::default().wide();
    let per_candidate = TuneOptions { batched: false, ..wide.clone() };

    hanayo_sim::set_reference_engine(true);
    let before = median_ns(samples, 1, || {
        black_box(tune(&model, &cluster, batches, 1, &per_candidate));
    });
    hanayo_sim::set_reference_engine(false);
    let after = median_ns(samples, 1, || {
        black_box(tune(&model, &cluster, batches, 1, &wide));
    });
    let mut out = BTreeMap::new();
    out.insert(format!("sweep_wide_bert64_lonestar6x8_b{batches}"), Workload::new(before, after));
    out
}

fn scheme_tag(scheme: Scheme) -> String {
    match scheme {
        Scheme::GPipe => "gpipe".into(),
        Scheme::Dapple => "dapple".into(),
        Scheme::Interleaved { chunks } => format!("interleaved{chunks}"),
        Scheme::Chimera => "chimera".into(),
        Scheme::Hanayo { waves } => format!("hanayo_w{waves}"),
        other => format!("{other:?}").to_lowercase(),
    }
}

fn bench_train(quick: bool) -> BTreeMap<String, Workload> {
    // The golden single-replica schemes the threaded runtime trains
    // (native Chimera holds two weight replicas; the paper's wave
    // transformation — and this repo's runtime — replaces it).
    let schemes = [
        Scheme::GPipe,
        Scheme::Dapple,
        Scheme::Interleaved { chunks: 2 },
        Scheme::Interleaved { chunks: 4 },
        Scheme::Hanayo { waves: 1 },
        Scheme::Hanayo { waves: 2 },
        Scheme::Hanayo { waves: 4 },
    ];
    // Width picks the gemm-vs-runtime balance: the paper's regime is
    // gemm-bound, so the full run uses a width where stage matmuls
    // dominate the threaded runtime's channel plumbing.
    let (width, iterations, samples) = if quick { (32usize, 1usize, 3) } else { (192, 2, 5) };
    let mut out = BTreeMap::new();
    for scheme in schemes {
        let cfg = PipelineConfig::new(8, 8, scheme).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let stages = schedule.stage_map.stages;
        let model = MicroModel { width, total_blocks: stages as usize, seed: 7 };
        let data = synthetic_data(11, iterations, 8, 4, width);
        let trainer = TrainerConfig::new(schedule, model.build_stages(stages), 0.01, LossKind::Mse);
        let w = before_after_kernels(samples, 1, || {
            black_box(train(&trainer, &data));
        });
        out.insert(format!("train_p8_m8_w{width}_{}", scheme_tag(scheme)), w);
    }
    out
}

/// Time `f` with the metrics registry enabled ("before") and disabled
/// ("after"), so the speedup column reads as the instrumentation
/// overhead factor. Restores the registry to its pre-call state: the
/// overhead run's counters are scratch, not observability output.
fn before_after_metrics(samples: usize, inner: usize, mut f: impl FnMut()) -> Workload {
    let was_enabled = hanayo_metrics::enabled();
    hanayo_metrics::set_enabled(true);
    let before = median_ns(samples, inner, &mut f);
    hanayo_metrics::set_enabled(false);
    let after = median_ns(samples, inner, &mut f);
    hanayo_metrics::reset();
    hanayo_metrics::set_enabled(was_enabled);
    Workload::new(before, after)
}

fn bench_metrics(quick: bool) -> BTreeMap<String, Workload> {
    let (samples, inner) = if quick { (3, 8) } else { (7, 40) };
    let mut out = BTreeMap::new();

    // Gemm dispatch: one labelled counter bump per call when on, one
    // relaxed atomic load + untaken branch when off.
    let a = dense(64, 64, 1);
    let b = dense(64, 64, 2);
    out.insert(
        "gemm_dispatch_64x64x64".into(),
        before_after_metrics(samples, inner, || {
            black_box(a.matmul(&b));
        }),
    );

    // Compiled-engine hot loop: events are counted in a plain local and
    // flushed once per run, so "on" adds three counter merges per run.
    let cfg = PipelineConfig::new(8, 16, Scheme::Hanayo { waves: 2 }).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let cost = CostTable::build(&ModelConfig::bert64(), cfg.stages(), 1);
    let cluster = lonestar6(8);
    let opts = SimOptions::default();
    let compiled = compile_schedule(&schedule, &opts);
    out.insert(
        "sim_compiled_hanayo_w2_p8_b16".into(),
        before_after_metrics(samples, inner, || {
            black_box(try_simulate_compiled(&compiled, &schedule, &cost, &cluster, opts).unwrap());
        }),
    );

    // Threaded training: the densest instrumentation in the repo —
    // per-worker stat flushes, mailbox-wait clock reads, heartbeat and
    // stash gauges at every iteration boundary.
    let (width, train_samples) = if quick { (16usize, 3) } else { (32, 5) };
    let cfg = PipelineConfig::new(8, 8, Scheme::Hanayo { waves: 2 }).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let stages = schedule.stage_map.stages;
    let model = MicroModel { width, total_blocks: stages as usize, seed: 7 };
    let data = synthetic_data(11, 1, 8, 4, width);
    let trainer = TrainerConfig::new(schedule, model.build_stages(stages), 0.01, LossKind::Mse);
    out.insert(
        format!("train_p8_m8_w{width}_hanayo_w2"),
        before_after_metrics(train_samples, 1, || {
            black_box(train(&trainer, &data));
        }),
    );
    out
}

fn repo_root() -> PathBuf {
    // crates/bench -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

const FILES: [(&str, &str); 4] = [
    ("BENCH_GEMM.json", "gemm"),
    ("BENCH_SWEEP.json", "sweep"),
    ("BENCH_TRAIN.json", "train"),
    ("BENCH_METRICS.json", "metrics"),
];

fn load(path: &Path, bench: &str) -> Result<BenchFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let file: BenchFile =
        serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    if file.schema != SCHEMA {
        return Err(format!("{}: schema {:?}, expected {SCHEMA:?}", path.display(), file.schema));
    }
    if file.bench != bench {
        return Err(format!("{}: bench {:?}, expected {bench:?}", path.display(), file.bench));
    }
    Ok(file)
}

fn validate_files(root: &Path) -> Result<(), String> {
    for (name, bench) in FILES {
        let path = root.join(name);
        let file = load(&path, bench)?;
        if file.entries.is_empty() {
            return Err(format!("{name}: no trajectory entries"));
        }
        for entry in &file.entries {
            if entry.workloads.is_empty() {
                return Err(format!("{name}: entry {:?} has no workloads", entry.label));
            }
            for (wname, w) in &entry.workloads {
                if w.before_ns == 0 || w.after_ns == 0 {
                    return Err(format!("{name}: {wname}: zero timing"));
                }
                let expect = w.before_ns as f64 / w.after_ns as f64;
                if (w.speedup - expect).abs() > expect * 0.02 {
                    return Err(format!(
                        "{name}: {wname}: speedup {} inconsistent with {}/{}",
                        w.speedup, w.before_ns, w.after_ns
                    ));
                }
            }
        }
        println!("ok: {name} ({} entries)", file.entries.len());
    }
    Ok(())
}

fn ms(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let value_of =
        |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned();
    let quick = has("--quick");
    let only = value_of("--only");
    let metrics_out = value_of("--metrics");
    let root = repo_root();

    if has("--validate") {
        if let Err(e) = validate_files(&root) {
            eprintln!("BENCH validation failed: {e}");
            std::process::exit(1);
        }
        return;
    }

    let run = |family: &str| only.as_deref().is_none_or(|o| o == family);
    let mut results: Vec<(&str, &str, BTreeMap<String, Workload>)> = Vec::new();
    // The overhead family runs first: it toggles and then resets the
    // registry, so it must finish before --metrics turns collection on
    // for the remaining families.
    if run("metrics") {
        results.push(("BENCH_METRICS.json", "metrics", bench_metrics(quick)));
    }
    if metrics_out.is_some() {
        hanayo_repro::metricsio::enable_metrics();
    }
    if run("gemm") {
        results.push(("BENCH_GEMM.json", "gemm", bench_gemm(quick)));
    }
    if run("sweep") {
        results.push(("BENCH_SWEEP.json", "sweep", bench_sweep(quick)));
    }
    if run("train") {
        results.push(("BENCH_TRAIN.json", "train", bench_train(quick)));
    }

    for (_, bench, workloads) in &results {
        println!("== {bench} ==");
        for (name, w) in workloads {
            println!(
                "  {name:<42} before {:>12}  after {:>12}  speedup {:.2}x",
                ms(w.before_ns),
                ms(w.after_ns),
                w.speedup
            );
        }
    }

    if has("--guard") {
        let mut failures = Vec::new();
        for (file, bench, workloads) in &results {
            let recorded = match load(&root.join(file), bench) {
                Ok(f) => f,
                Err(e) => {
                    failures.push(format!("{file}: unreadable trajectory: {e}"));
                    continue;
                }
            };
            let Some(last) = recorded.entries.last() else {
                failures.push(format!("{file}: empty trajectory"));
                continue;
            };
            for (name, w) in workloads {
                if let Some(base) = last.workloads.get(name) {
                    if w.after_ns as f64 > base.after_ns as f64 * GUARD_FACTOR {
                        failures.push(format!(
                            "{bench}/{name}: after {} vs recorded {} (> {GUARD_FACTOR}x)",
                            ms(w.after_ns),
                            ms(base.after_ns)
                        ));
                    }
                }
            }
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("regression: {f}");
            }
            std::process::exit(1);
        }
        println!("guard: all workloads within {GUARD_FACTOR}x of the recorded trajectory");
    }

    if let Some(label) = value_of("--record") {
        let unix_time_s = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        for (file, bench, workloads) in results {
            let path = root.join(file);
            let mut existing = load(&path, bench).unwrap_or_else(|_| BenchFile {
                schema: SCHEMA.into(),
                bench: bench.into(),
                unit: UNIT.into(),
                entries: Vec::new(),
            });
            existing.entries.push(Entry { label: label.clone(), unix_time_s, quick, workloads });
            let json = serde_json::to_string_pretty(&existing).unwrap_or_default();
            if let Err(e) = std::fs::write(&path, json + "\n") {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("recorded entry {label:?} -> {}", path.display());
        }
    }

    if let Some(path) = &metrics_out {
        match hanayo_repro::metricsio::write_metrics(path) {
            Ok(n) => eprintln!("metrics: wrote {n} series to {path}"),
            Err(e) => {
                eprintln!("metrics: FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}
